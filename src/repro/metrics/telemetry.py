"""The live telemetry plane: streaming instruments on the sim clock.

The paper's observer is post-mortem: probes accumulate, the observer
collects at the end.  This module makes observation *live* without
giving up the "no per-sample storage" constraint of an embedded target:

- :class:`Log2Histogram` -- fixed 64-bucket log2 streaming histogram
  (p50/p90/p99/p999 by bucket interpolation, clamped to the tracked
  min/max so single-sample and constant streams report exactly).
  Merging is bucketwise addition, so per-shard histograms merge
  **bucket-exact** into the single-kernel histogram.
- :class:`Gauge` -- last-write-wins point-in-time value.
- :class:`MetricsRegistry` -- instruments keyed by ``name{labels}``,
  plus a windowed time series: the registry snapshots *deltas* on the
  sim clock at fixed window boundaries (``index = ts // window_ns``),
  so per-shard windows merge by index exactly like trace buffers merge
  by ``(ts, shard, seq)``.  Window ids draw from shard ranges
  (:func:`repro.sim.shard.shard_window_source`) so merged series never
  collide, mirroring span ids.
- :class:`ComponentTelemetry` -- the per-component adapter fed by the
  :class:`~repro.core.observation.ObservationProbe` hot-path hooks; it
  also drives the component's contract checker
  (:mod:`repro.core.contracts`) from the same stream.
- :func:`enable_telemetry` / :func:`collect_telemetry` -- the runtime
  wiring, shaped exactly like ``enable_tracing`` / ``merge_buffers``:
  call after ``deploy()`` (and after ``enable_tracing`` when you want
  contract violations in the trace), collect after ``wait()``.

Determinism contract: on the simulated runtimes every instrument fed
from middleware hooks is a pure function of virtual time, so a pinned
placement produces byte-identical registries for every shard count --
the ``metrics sha256`` CI gate (see :mod:`repro.metrics.export`).
"""

from __future__ import annotations

import threading
from itertools import count
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.metrics.stats import Counter

#: Fixed bucket count: bucket 0 holds zeros, bucket b >= 1 holds values
#: in [2^(b-1), 2^b - 1].  63 value buckets cover every int64 duration.
N_BUCKETS = 64

#: Default window width on the sim clock (5 ms of virtual time).
DEFAULT_WINDOW_NS = 5_000_000

#: Reported quantiles (fraction, snapshot key).
QUANTILES = ((0.50, "p50_ns"), (0.90, "p90_ns"), (0.99, "p99_ns"), (0.999, "p999_ns"))


def bucket_of(value: int) -> int:
    """Bucket index of a non-negative integer sample."""
    if value <= 0:
        return 0
    b = value.bit_length()
    return b if b < N_BUCKETS else N_BUCKETS - 1


def bucket_bounds(index: int) -> Tuple[int, int]:
    """Inclusive ``(lo, hi)`` value range of one bucket."""
    if index <= 0:
        return (0, 0)
    return (1 << (index - 1), (1 << index) - 1)


class Log2Histogram:
    """Streaming log2-bucket histogram: no per-sample storage, exact
    bucketwise merge."""

    kind = "histogram"

    __slots__ = (
        "name", "counts", "count", "total", "min_value", "max_value",
        "delta_counts", "delta_count", "delta_total",
    )

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counts: List[int] = [0] * N_BUCKETS
        self.count = 0
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None
        # Samples since the last window cut, kept *pre-aggregated* so
        # closing a window takes this sparse dict instead of copying
        # and diffing all 64 cumulative buckets per histogram per roll
        # (the dominant telemetry cost at ~100 live instruments).
        self.delta_counts: Dict[int, int] = {}
        self.delta_count = 0
        self.delta_total = 0

    def observe(self, value: int) -> None:
        """Record one sample (negative samples clamp to 0)."""
        if value < 0:
            value = 0
        b = value.bit_length()
        if b >= N_BUCKETS:
            b = N_BUCKETS - 1
        self.counts[b] += 1
        self.count += 1
        self.total += value
        dc = self.delta_counts
        dc[b] = dc.get(b, 0) + 1
        self.delta_count += 1
        self.delta_total += value
        mn = self.min_value
        if mn is None or value < mn:
            self.min_value = value
        mx = self.max_value
        if mx is None or value > mx:
            self.max_value = value

    def take_delta(self) -> Optional[Dict[str, Any]]:
        """The window delta accumulated since the last cut (cleared), as
        export-ready data; ``None`` when nothing was observed."""
        if not self.delta_count:
            return None
        delta = {
            "kind": "histogram",
            "count": self.delta_count,
            "total_ns": self.delta_total,
            "buckets": {_BUCKET_KEYS[b]: c for b, c in sorted(self.delta_counts.items())},
        }
        self.delta_counts = {}
        self.delta_count = 0
        self.delta_total = 0
        return delta

    def merge(self, other: "Log2Histogram") -> None:
        """Bucketwise addition -- the shard-merge primitive."""
        if other.count == 0:
            return
        counts = self.counts
        for b, c in enumerate(other.counts):
            if c:
                counts[b] += c
        self.count += other.count
        self.total += other.total
        if self.min_value is None or (other.min_value is not None and other.min_value < self.min_value):
            self.min_value = other.min_value
        if self.max_value is None or (other.max_value is not None and other.max_value > self.max_value):
            self.max_value = other.max_value

    def percentile(self, q: float) -> float:
        """Quantile by cumulative bucket walk with linear interpolation
        inside the bucket, clamped to the tracked min/max (so an empty
        histogram reports 0 and a single sample reports itself exactly)."""
        n = self.count
        if n == 0:
            return 0.0
        target = q * n
        if target < 1.0:
            target = 1.0
        cum = 0
        for b, c in enumerate(self.counts):
            if not c:
                continue
            prev = cum
            cum += c
            if cum >= target:
                lo, hi = bucket_bounds(b)
                value = lo + (target - prev) / c * (hi - lo)
                if self.min_value is not None and value < self.min_value:
                    value = float(self.min_value)
                if self.max_value is not None and value > self.max_value:
                    value = float(self.max_value)
                return value
        return float(self.max_value or 0)  # pragma: no cover - cum covers n

    def quantiles(self) -> Dict[str, float]:
        """The reported quantile set (see :data:`QUANTILES`)."""
        return {key: self.percentile(q) for q, key in QUANTILES}

    def state(self) -> Tuple[int, int, Tuple[int, ...]]:
        """Cumulative integer state (for window deltas and digests)."""
        return (self.count, self.total, tuple(self.counts))

    def reset(self) -> None:
        """Zero the histogram in place (registry ``clear()``)."""
        self.counts = [0] * N_BUCKETS
        self.count = 0
        self.total = 0
        self.min_value = None
        self.max_value = None
        self.delta_counts = {}
        self.delta_count = 0
        self.delta_total = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready cumulative snapshot, sparse buckets."""
        snap: Dict[str, Any] = {
            "count": self.count,
            "total_ns": self.total,
            "min_ns": self.min_value if self.min_value is not None else 0,
            "max_ns": self.max_value if self.max_value is not None else 0,
            "buckets": {str(b): c for b, c in enumerate(self.counts) if c},
        }
        snap.update(self.quantiles())
        return snap

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Log2Histogram {self.name} n={self.count}>"


class Gauge:
    """A point-in-time value (queue depth, busy time): last write wins."""

    kind = "gauge"

    __slots__ = ("name", "value", "ts_ns")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: float = 0
        self.ts_ns = 0

    def set(self, value: float, ts_ns: int = 0) -> None:
        """Stamp the current value (``ts_ns`` orders merged gauges)."""
        self.value = value
        self.ts_ns = ts_ns

    def merge(self, other: "Gauge") -> None:
        """Later stamp wins (ties keep ours -- shard order)."""
        if other.ts_ns > self.ts_ns:
            self.value = other.value
            self.ts_ns = other.ts_ns

    def reset(self) -> None:
        """Zero the gauge in place (registry ``clear()``)."""
        self.value = 0
        self.ts_ns = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready snapshot."""
        return {"value": self.value, "ts_ns": self.ts_ns}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Gauge {self.name}={self.value}>"


def instrument_id(name: str, labels: Dict[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` id (labels sorted; stable across runs)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


#: Bucket-index keys of window/export payloads, precomputed: the window
#: cut runs on the per-event hot path's slow branch and must not pay 64
#: ``str()`` calls per changed histogram.
_BUCKET_KEYS = tuple(str(b) for b in range(N_BUCKETS))


class Window:
    """One closed window of the series: instrument *deltas* over
    ``[index * window_ns, (index + 1) * window_ns)`` of the sim clock."""

    __slots__ = ("id", "index", "start_ns", "end_ns", "shard", "data")

    def __init__(self, wid: int, index: int, window_ns: int, shard: int,
                 data: Dict[str, Dict[str, Any]]) -> None:
        self.id = wid
        self.index = index
        self.start_ns = index * window_ns
        self.end_ns = (index + 1) * window_ns
        self.shard = shard
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "id": self.id,
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "shard": self.shard,
            "data": self.data,
        }


class MetricsRegistry:
    """Instruments plus their windowed delta series on the sim clock.

    ``window_ids`` is a zero-arg *factory* returning a fresh id iterator
    (default counts from 1); keeping it a factory lets :meth:`clear`
    restart the numbering exactly like a fresh registry -- the
    ``TraceBuffer.clear()`` parity contract (repeated campaigns in one
    process must produce identical series).
    """

    def __init__(
        self,
        shard: int = 0,
        window_ns: int = DEFAULT_WINDOW_NS,
        window_ids: Optional[Callable[[], Iterable[int]]] = None,
    ) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.shard = shard
        self.window_ns = window_ns
        self._window_id_factory = window_ids or (lambda: count(1))
        self._window_ids = iter(self._window_id_factory())
        #: key -> (kind, name, labels, instrument)
        self._entries: Dict[tuple, Tuple[str, str, Dict[str, Any], Any]] = {}
        #: key -> canonical instrument id (built once at registration;
        #: the window cut must not re-join label strings per roll).
        self._iids: Dict[tuple, str] = {}
        self.windows: List[Window] = []
        self._window_index: Optional[int] = None
        #: Sim time at which the open window ends; the per-sample fast
        #: path is one compare against it (no division).  -1 = no window
        #: open yet, so the first sample takes the slow path.
        self._next_roll_ns = -1
        self._last: Dict[tuple, Any] = {}
        self._roll_hooks: List[Callable[[int, int, int, bool], None]] = []
        # Only the slow path (closing a window) locks; the per-sample
        # fast path is a compare.  Native-runtime threads race only on
        # the roll, never on their own (component-labeled) instruments.
        self._lock = threading.Lock()
        self.last_ns = 0

    # -- instruments ---------------------------------------------------------

    def _get(self, kind: str, factory, name: str, labels: Dict[str, Any]):
        key = (name, tuple(sorted(labels.items())))
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = (kind, name, dict(labels), factory(name))
            self._iids[key] = instrument_id(name, labels)
        return entry[3]

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get-or-create a labeled counter."""
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get-or-create a labeled gauge."""
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Log2Histogram:
        """Get-or-create a labeled log2 histogram."""
        return self._get("histogram", Log2Histogram, name, labels)

    def instruments(self) -> List[Tuple[str, str, Dict[str, Any], Any]]:
        """All ``(kind, name, labels, instrument)`` entries, id-sorted."""
        return sorted(
            self._entries.values(), key=lambda e: instrument_id(e[1], e[2])
        )

    # -- windows --------------------------------------------------------------

    def add_roll_hook(self, hook: Callable[[int, int, int, bool], None]) -> None:
        """Register ``hook(index, start_ns, end_ns, final)`` called as a
        window closes, *before* its deltas are cut -- counters the hook
        bumps (e.g. contract violations) land in the closing window."""
        self._roll_hooks.append(hook)

    def advance(self, now_ns: int) -> None:
        """Move the clock; closes windows the time has passed.  The
        per-sample fast path is two compares (no division)."""
        if now_ns > self.last_ns:
            self.last_ns = now_ns
        if now_ns < self._next_roll_ns:
            return  # inside (or behind) the open window
        idx = now_ns // self.window_ns
        cur = self._window_index
        if cur is None:
            self._window_index = idx
            self._next_roll_ns = (idx + 1) * self.window_ns
            return
        if idx <= cur:
            return  # late stragglers fold into the open window
        self._roll_to(idx)

    def _roll_to(self, idx: int) -> None:
        with self._lock:
            cur = self._window_index
            if cur is None or idx <= cur:
                return
            # Every delta accumulated since the last cut was observed
            # while window `cur` was open (events advance before they
            # observe), so the gap windows in between are empty.
            self._close_window(cur, final=False)
            self._window_index = idx
            self._next_roll_ns = (idx + 1) * self.window_ns

    def finish(self, now_ns: Optional[int] = None) -> None:
        """Close the open (partial) window at end of run."""
        if now_ns is not None:
            self.advance(now_ns)
        with self._lock:
            cur = self._window_index
            if cur is None:
                return
            self._close_window(cur, final=True)

    def _close_window(self, index: int, final: bool) -> None:
        start = index * self.window_ns
        for hook in self._roll_hooks:
            hook(index, start, start + self.window_ns, final)
        data: Dict[str, Dict[str, Any]] = {}
        iids = self._iids
        last_state = self._last
        for key, (kind, _name, _labels, inst) in list(self._entries.items()):
            if kind == "counter":
                last = last_state.get(key, 0)
                delta = inst.value - last
                if delta:
                    last_state[key] = inst.value
                    data[iids[key]] = {"kind": "counter", "inc": delta}
            elif kind == "histogram":
                # Histograms pre-aggregate their own window delta (see
                # Log2Histogram.take_delta): the cut is one sparse-dict
                # handoff, not a 64-bucket copy-and-diff.
                delta = inst.take_delta()
                if delta is not None:
                    data[iids[key]] = delta
            # Gauges are point-in-time: read live, never windowed.
        if data:
            self.windows.append(
                Window(next(self._window_ids), index, self.window_ns, self.shard, data)
            )

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        """Reset to the state of a *fresh* registry: instruments zeroed
        in place (cached references stay valid), windows dropped, window
        numbering restarted -- the :meth:`TraceBuffer.clear` twin, so
        repeated campaigns in one process produce identical series."""
        for _kind, _name, _labels, inst in self._entries.values():
            inst.reset()
        self.windows.clear()
        self._window_ids = iter(self._window_id_factory())
        self._window_index = None
        self._next_roll_ns = -1
        self._last.clear()
        self.last_ns = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready cumulative view: instruments plus the window series."""
        instruments = {}
        for kind, name, labels, inst in self.instruments():
            snap = {"kind": kind, "name": name, "labels": labels}
            value = inst.snapshot()
            if isinstance(value, dict):
                snap.update(value)
            else:  # plain Counter snapshot
                snap["value"] = value
            instruments[instrument_id(name, labels)] = snap
        return {
            "window_ns": self.window_ns,
            "shard": self.shard,
            "instruments": instruments,
            "windows": [w.to_dict() for w in self.windows],
        }


def _merge_window_data(into: Dict[str, Dict[str, Any]], data: Dict[str, Dict[str, Any]]) -> None:
    for iid, delta in data.items():
        cur = into.get(iid)
        if cur is None:
            cur = dict(delta)
            if delta["kind"] == "histogram":
                cur["buckets"] = dict(delta["buckets"])
            into[iid] = cur
            continue
        if delta["kind"] == "counter":
            cur["inc"] += delta["inc"]
        else:
            cur["count"] += delta["count"]
            cur["total_ns"] += delta["total_ns"]
            buckets = cur["buckets"]
            for b, c in delta["buckets"].items():
                buckets[b] = buckets.get(b, 0) + c


def merge_registries(parts: List[MetricsRegistry]) -> MetricsRegistry:
    """K-way merge of per-shard registries into one.

    Instruments merge by id (bucketwise for histograms -- the property
    the shard-invariance tests pin); windows merge by ``(index, shard,
    id)`` order, same-index windows combine across shards, and ids are
    re-numbered globally -- exactly the
    :func:`repro.trace.tracer.merge_buffers` contract.
    """
    if not parts:
        raise ValueError("nothing to merge")
    if len({p.window_ns for p in parts}) != 1:
        raise ValueError("cannot merge registries with different window_ns")
    merged = MetricsRegistry(shard=0, window_ns=parts[0].window_ns)
    for part in parts:
        for kind, name, labels, inst in part.instruments():
            if kind == "counter":
                merged.counter(name, **labels).inc(inst.value)
            elif kind == "gauge":
                merged.gauge(name, **labels).merge(inst)
            else:
                merged.histogram(name, **labels).merge(inst)
        if part.last_ns > merged.last_ns:
            merged.last_ns = part.last_ns
    tagged = sorted(
        ((w.index, part.shard, w.id, w) for part in parts for w in part.windows),
        key=lambda entry: entry[:3],
    )
    by_index: Dict[int, Dict[str, Dict[str, Any]]] = {}
    order: List[int] = []
    for index, _shard, _wid, window in tagged:
        if index not in by_index:
            by_index[index] = {}
            order.append(index)
        _merge_window_data(by_index[index], window.data)
    for index in order:
        merged.windows.append(
            Window(next(merged._window_ids), index, merged.window_ns, 0, by_index[index])
        )
    return merged


class ComponentTelemetry:
    """Per-component adapter between the observation probe's hot-path
    hooks and a shared :class:`MetricsRegistry` (plus the component's
    contract checker, when any interface carries a contract).

    The per-message hot path follows the probe's own deferral idiom
    (see :meth:`ObservationProbe.record_send`): it only moves the
    registry clock (two compares) and appends one pending tuple to the
    interface's cache entry; the histogram/counter folds run batched in
    :meth:`_drain` -- as a roll hook when a window closes (before its
    deltas are cut, so every sample lands in the window it was observed
    in) and before any read.  The fold binds each instrument's state to
    locals once per interface, so per-sample cost is pure int math:
    scattered per-event instrument updates measured ~2x slower against
    the 1.05x budget of ``bench metrics_overhead``.  Contract checks
    stay per-event: violations are *live* by design.
    """

    __slots__ = (
        "registry", "component", "checker",
        "_send_cache", "_recv_cache",
        "_restarts", "_restart_hist", "_replays", "_dedups",
        "_checkpoints", "_checkpoint_bytes", "_faults",
    )

    def __init__(self, registry: MetricsRegistry, component: str, checker=None) -> None:
        self.registry = registry
        self.component = component
        self.checker = checker
        # iface -> [duration hist, msg counter, byte counter, pending]
        # (receive adds a latency histogram before pending).  Pending
        # send samples are (duration_ns, size_bytes), receive samples
        # (duration_ns, latency_ns, size_bytes); size_bytes == -1 marks
        # control messages (duration-only, no counters, no latency).
        self._send_cache: Dict[str, list] = {}
        self._recv_cache: Dict[str, list] = {}
        # Drain before each window cut.  Registered here, so it runs
        # before any contract checker's on_window (attached after
        # construction): rate checks see fully folded counters.
        registry.add_roll_hook(self._on_roll)
        self._restarts = registry.counter("restarts_total", component=component)
        self._restart_hist = registry.histogram("restart_downtime_ns", component=component)
        self._replays = registry.counter("replays_total", component=component)
        self._dedups = registry.counter("dedups_total", component=component)
        self._checkpoints = registry.counter("checkpoints_total", component=component)
        self._checkpoint_bytes = registry.counter("checkpoint_bytes_total", component=component)
        self._faults: Dict[str, Counter] = {}

    def _make_send(self, iface: str) -> list:
        reg, c = self.registry, self.component
        entry = self._send_cache[iface] = [
            reg.histogram("send_duration_ns", component=c, iface=iface),
            reg.counter("messages_sent_total", component=c, iface=iface),
            reg.counter("bytes_sent_total", component=c, iface=iface),
            [],
        ]
        return entry

    def _make_recv(self, iface: str) -> list:
        reg, c = self.registry, self.component
        entry = self._recv_cache[iface] = [
            reg.histogram("receive_duration_ns", component=c, iface=iface),
            reg.counter("messages_received_total", component=c, iface=iface),
            reg.counter("bytes_received_total", component=c, iface=iface),
            reg.histogram("delivery_latency_ns", component=c, iface=iface),
            [],
        ]
        return entry

    # -- middleware stream (probe hot path) ----------------------------------

    def on_send(self, iface: str, message, duration_ns: int) -> None:
        """One send: clock, pending sample, live contract check."""
        sent = message.sent_at_us
        reg = self.registry
        ts = sent * 1_000 if sent is not None else reg.last_ns
        if ts > reg.last_ns:
            reg.last_ns = ts
        if ts >= reg._next_roll_ns:
            # Crossing a window boundary drains the pending samples into
            # the closing window *before* this one is appended.
            reg.advance(ts)
        entry = self._send_cache.get(iface)
        if entry is None:
            entry = self._make_send(iface)
        if message.kind == "data":
            entry[3].append((duration_ns, message.size_bytes))
            if self.checker is not None:
                self.checker.on_send(iface, message, ts)
        else:
            entry[3].append((duration_ns, -1))

    def on_receive(self, iface: str, message, duration_ns: int,
                   latency_ns: int, now_us: Optional[int]) -> None:
        """One receive: clock, pending sample, live contract checks
        (deadline, ordering)."""
        reg = self.registry
        ts = now_us * 1_000 if now_us is not None else reg.last_ns
        if ts > reg.last_ns:
            reg.last_ns = ts
        if ts >= reg._next_roll_ns:
            reg.advance(ts)
        entry = self._recv_cache.get(iface)
        if entry is None:
            entry = self._make_recv(iface)
        if message.kind == "data":
            entry[4].append((duration_ns, latency_ns, message.size_bytes))
            if self.checker is not None:
                self.checker.on_receive(iface, message, latency_ns, ts)
        else:
            entry[4].append((duration_ns, -1, -1))

    def _on_roll(self, index: int, start_ns: int, end_ns: int, final: bool) -> None:
        self._drain()

    @staticmethod
    def _fold_duration(hist, samples: list) -> None:
        """Fold (duration, ...) samples into one histogram, locals-bound."""
        counts = hist.counts
        deltas = hist.delta_counts
        n = tot = 0
        mn, mx = hist.min_value, hist.max_value
        for sample in samples:
            v = sample[0]
            if v < 0:
                v = 0
            b = v.bit_length()
            if b >= N_BUCKETS:
                b = N_BUCKETS - 1
            counts[b] += 1
            deltas[b] = deltas.get(b, 0) + 1
            n += 1
            tot += v
            if mn is None or v < mn:
                mn = v
            if mx is None or v > mx:
                mx = v
        hist.count += n
        hist.total += tot
        hist.delta_count += n
        hist.delta_total += tot
        hist.min_value = mn
        hist.max_value = mx

    def _drain(self) -> None:
        """Fold pending samples into the instruments (batched)."""
        for entry in self._send_cache.values():
            samples = entry[3]
            if not samples:
                continue
            entry[3] = []
            self._fold_duration(entry[0], samples)
            msgs = nbytes = 0
            for _dur, size in samples:
                if size >= 0:
                    msgs += 1
                    nbytes += size
            if msgs:
                entry[1].value += msgs
                entry[2].value += nbytes
        for entry in self._recv_cache.values():
            samples = entry[4]
            if not samples:
                continue
            entry[4] = []
            self._fold_duration(entry[0], samples)
            # Delivery latency is a *data* metric: control messages
            # (e.g. end-of-stream markers) queue behind the whole
            # stream and would dominate the tail with meaningless
            # outliers.
            lat_hist = entry[3]
            counts = lat_hist.counts
            deltas = lat_hist.delta_counts
            n = tot = 0
            mn, mx = lat_hist.min_value, lat_hist.max_value
            msgs = nbytes = 0
            for _dur, lat, size in samples:
                if size >= 0:
                    msgs += 1
                    nbytes += size
                    if lat >= 0:
                        b = lat.bit_length()
                        if b >= N_BUCKETS:
                            b = N_BUCKETS - 1
                        counts[b] += 1
                        deltas[b] = deltas.get(b, 0) + 1
                        n += 1
                        tot += lat
                        if mn is None or lat < mn:
                            mn = lat
                        if mx is None or lat > mx:
                            mx = lat
            if n:
                lat_hist.count += n
                lat_hist.total += tot
                lat_hist.delta_count += n
                lat_hist.delta_total += tot
                lat_hist.min_value = mn
                lat_hist.max_value = mx
            if msgs:
                entry[1].value += msgs
                entry[2].value += nbytes

    # -- robustness stream (supervisor / recovery / injector hooks) -----------

    def on_restart(self, downtime_ns: int, now_ns: Optional[int] = None) -> None:
        """One supervised restart: the MTTR live series."""
        if now_ns is not None:
            self.registry.advance(now_ns)
        self._restarts.inc()
        self._restart_hist.observe(int(downtime_ns))

    def on_replay(self, now_ns: Optional[int] = None) -> None:
        """One replayed message (exactly-once recovery)."""
        if now_ns is not None:
            self.registry.advance(now_ns)
        self._replays.inc()

    def on_dedup(self, now_ns: Optional[int] = None) -> None:
        """One duplicate discarded by sequence dedup."""
        if now_ns is not None:
            self.registry.advance(now_ns)
        self._dedups.inc()

    def on_checkpoint(self, nbytes: int) -> None:
        """One committed recovery checkpoint."""
        self._checkpoints.inc()
        self._checkpoint_bytes.inc(int(nbytes))

    def on_fault(self, kind: str) -> None:
        """One injected/organic fault, by kind."""
        counter = self._faults.get(kind)
        if counter is None:
            counter = self._faults[kind] = self.registry.counter(
                "faults_total", component=self.component, kind=kind
            )
        counter.inc()

    # -- gauges (stamped by the runtimes) -------------------------------------

    def set_busy(self, busy_ns: int) -> None:
        """Stamp the component's accumulated CPU busy time."""
        self.registry.gauge("busy_ns", component=self.component).set(
            busy_ns, self.registry.last_ns
        )

    def set_queue_depth(self, iface: str, depth: int) -> None:
        """Stamp one provided interface's live inbound queue depth."""
        self.registry.gauge("queue_depth", component=self.component, iface=iface).set(
            depth, self.registry.last_ns
        )

    # -- observer surface ------------------------------------------------------

    def interface_summary(self) -> Dict[str, Any]:
        """Per-interface percentile summary for the middleware report."""
        self._drain()

        def quantile_view(entry_index: int, cache: Dict[str, tuple]) -> Dict[str, Any]:
            out = {}
            for iface, entry in sorted(cache.items()):
                hist = entry[entry_index]
                if hist.count:
                    out[iface] = {"count": hist.count, **hist.quantiles()}
            return out

        return {
            "send_duration_ns": quantile_view(0, self._send_cache),
            "receive_duration_ns": quantile_view(0, self._recv_cache),
            "delivery_latency_ns": quantile_view(3, self._recv_cache),
        }

    def contract_summary(self) -> Dict[str, Any]:
        """Violation counts for the application report ({} when no
        contracts are attached)."""
        if self.checker is None:
            return {}
        return self.checker.summary()


def _attach_checker(cont, registry: MetricsRegistry):
    """Build a contract checker for a container when any of its
    functional interfaces declares a contract."""
    from repro.core.contracts import ContractChecker

    comp = cont.component
    receive_contracts = {
        p.name: p.contract
        for p in comp.provided.values()
        if p.contract is not None and not p.is_observation
    }
    send_contracts = {
        r.name: r.contract
        for r in comp.required.values()
        if r.contract is not None and not r.is_observation
    }
    if not receive_contracts and not send_contracts:
        return None
    checker = ContractChecker(
        comp.name,
        receive_contracts,
        send_contracts,
        registry,
        tracer=cont.extra.get("tracer"),
    )
    registry.add_roll_hook(checker.on_window)
    return checker


def enable_telemetry(runtime, window_ns: int = DEFAULT_WINDOW_NS):
    """Attach a :class:`ComponentTelemetry` to every deployed probe.

    Call after ``runtime.deploy(app)`` (and after ``enable_tracing`` if
    contract violations should appear in the trace) and before
    ``runtime.start()``.  On a sharded runtime one registry is built per
    shard with shard-range window ids -- merge with
    :func:`collect_telemetry` / :func:`merge_registries` afterwards.
    Returns the registry (or the per-shard registry list).
    """
    n_shards = getattr(runtime, "n_shards", 0)
    if n_shards:
        from repro.sim.shard import shard_window_source

        registries = [
            MetricsRegistry(
                shard=i, window_ns=window_ns,
                window_ids=(lambda i=i: shard_window_source(i)),
            )
            for i in range(n_shards)
        ]
    else:
        registries = None
    single = MetricsRegistry(window_ns=window_ns) if registries is None else None
    for cont in runtime.containers.values():
        probe = cont.probe
        policy = probe.policy
        if policy is not None and not getattr(policy, "telemetry", True):
            continue
        reg = registries[cont.extra["shard"]] if registries is not None else single
        # Construct before attaching the checker: the telemetry's drain
        # hook must register ahead of the checker's on_window, so rate
        # checks run against fully folded counters.
        tel = ComponentTelemetry(reg, cont.component.name)
        tel.checker = _attach_checker(cont, reg)
        probe.telemetry = tel
    runtime.metrics = registries if registries is not None else single
    return runtime.metrics


def collect_telemetry(runtime, final_ns: Optional[int] = None) -> MetricsRegistry:
    """Finalize and merge a runtime's telemetry after ``wait()``.

    Stamps the runtime-owned gauges (busy time, queue depths, EMBX
    object traffic), closes the open window of every registry at the
    run's makespan (identical across shard counts under pinned
    placement, so the final partial window is merge-invariant too) and
    returns one merged registry.
    """
    regs = getattr(runtime, "metrics", None)
    if regs is None:
        raise ValueError("enable_telemetry() was not called on this runtime")
    stamp = getattr(runtime, "stamp_telemetry", None)
    if stamp is not None:
        stamp()
    parts = regs if isinstance(regs, list) else [regs]
    if final_ns is None:
        final_ns = getattr(runtime, "makespan_ns", None)
    for reg in parts:
        reg.finish(final_ns if final_ns is not None else reg.last_ns)
    return merge_registries(parts) if isinstance(regs, list) else regs
