"""Aggregating metric primitives.

These are what the EMBera observation probes accumulate: plain counters
(communication operations, Table 2), duration timers (send/receive
execution times, Figures 4 and 8) and memory statistics (Tables 1 and 3).
All durations are integer nanoseconds; presentation layers convert.
"""

from __future__ import annotations

from typing import Dict, Optional


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Increment by ``n`` (default 1)."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold another counter's count into this one (shard merge)."""
        self.value += other.value

    def reset(self) -> None:
        """Zero the counter in place (registry ``clear()``)."""
        self.value = 0

    def snapshot(self) -> int:
        """Plain snapshot of the current state (for reports)."""
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Timer:
    """Streaming duration statistics: count / total / min / max / mean.

    Also tracks the sum of squares so a variance is available without
    retaining samples -- observation must stay lightweight on target.
    """

    __slots__ = ("name", "count", "total_ns", "min_ns", "max_ns", "_sumsq")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None
        self._sumsq = 0.0

    def record(self, duration_ns: int) -> None:
        """Record one duration sample (nanoseconds)."""
        if duration_ns < 0:
            raise ValueError(f"negative duration: {duration_ns}")
        self.count += 1
        self.total_ns += duration_ns
        self._sumsq += float(duration_ns) ** 2
        self.min_ns = duration_ns if self.min_ns is None else min(self.min_ns, duration_ns)
        self.max_ns = duration_ns if self.max_ns is None else max(self.max_ns, duration_ns)

    @property
    def mean_ns(self) -> float:
        """Mean duration in nanoseconds (0.0 when empty)."""
        return self.total_ns / self.count if self.count else 0.0

    @property
    def variance_ns2(self) -> float:
        """Population variance of the samples (ns^2)."""
        if self.count < 2:
            return 0.0
        mean = self.mean_ns
        return max(0.0, self._sumsq / self.count - mean * mean)

    def merge(self, other: "Timer") -> None:
        """Fold another timer's samples into this one."""
        if other.count == 0:
            return
        self.count += other.count
        self.total_ns += other.total_ns
        self._sumsq += other._sumsq
        self.min_ns = other.min_ns if self.min_ns is None else min(self.min_ns, other.min_ns)
        self.max_ns = other.max_ns if self.max_ns is None else max(self.max_ns, other.max_ns)

    def snapshot(self) -> Dict[str, float]:
        """Plain snapshot of the current state (for reports)."""
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "mean_ns": self.mean_ns,
            "min_ns": self.min_ns if self.min_ns is not None else 0,
            "max_ns": self.max_ns if self.max_ns is not None else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Timer {self.name} n={self.count} mean={self.mean_ns:.0f}ns>"


class MemoryStats:
    """Byte-granular memory report for one component."""

    __slots__ = ("stack_bytes", "interface_bytes", "heap_bytes")

    def __init__(self, stack_bytes: int = 0, interface_bytes: int = 0, heap_bytes: int = 0) -> None:
        self.stack_bytes = stack_bytes
        self.interface_bytes = interface_bytes
        self.heap_bytes = heap_bytes

    @property
    def total_bytes(self) -> int:
        """Total footprint in bytes."""
        return self.stack_bytes + self.interface_bytes + self.heap_bytes

    @property
    def total_kb(self) -> float:
        """Total footprint in kilobytes (1 kB = 1024 B)."""
        return self.total_bytes / 1024

    def snapshot(self) -> Dict[str, int]:
        """Plain snapshot of the current state (for reports)."""
        return {
            "stack_bytes": self.stack_bytes,
            "interface_bytes": self.interface_bytes,
            "heap_bytes": self.heap_bytes,
            "total_bytes": self.total_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MemoryStats total={self.total_kb:.0f}kB>"
