"""Counters, timers, report tables and analyses for observation data."""

from repro.metrics.asciichart import render_xy
from repro.metrics.stats import Counter, MemoryStats, Timer
from repro.metrics.table import Table

__all__ = ["Counter", "MemoryStats", "Table", "Timer", "render_xy"]
