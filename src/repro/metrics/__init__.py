"""Counters, timers, report tables and analyses for observation data."""

from repro.metrics.asciichart import render_xy
from repro.metrics.stats import Counter, MemoryStats, Timer
from repro.metrics.table import Table
from repro.metrics.telemetry import (
    ComponentTelemetry,
    Gauge,
    Log2Histogram,
    MetricsRegistry,
    collect_telemetry,
    enable_telemetry,
    merge_registries,
)
from repro.metrics.export import (
    metrics_digest,
    read_metrics,
    registry_from_payload,
    registry_payload,
    to_prometheus,
    write_metrics,
)
from repro.metrics.dashboard import iter_frames, render_dashboard

__all__ = [
    "ComponentTelemetry",
    "Counter",
    "Gauge",
    "Log2Histogram",
    "MemoryStats",
    "MetricsRegistry",
    "Table",
    "Timer",
    "collect_telemetry",
    "enable_telemetry",
    "iter_frames",
    "merge_registries",
    "metrics_digest",
    "read_metrics",
    "registry_from_payload",
    "registry_payload",
    "render_dashboard",
    "render_xy",
    "to_prometheus",
    "write_metrics",
]
