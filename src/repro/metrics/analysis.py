"""Cross-component analysis of observation reports.

The paper's section 4.4 reads the observation output by hand: "the
execution times indicate that the application is well load-balanced for
the JPEG input size but if that size changes, the execution times could
cause a bottleneck on the IDCT components".  This module mechanises that
reading: given the ``(component, level) -> data`` dict an observer
collects, it computes load balance, the bottleneck stage, communication
totals and throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.observation import APPLICATION_LEVEL, MIDDLEWARE_LEVEL, OS_LEVEL

Reports = Mapping[Tuple[str, str], Dict[str, Any]]


@dataclass(frozen=True)
class BalanceReport:
    """Busy-time balance across components."""

    cpu_time_us: Dict[str, int]
    bottleneck: str
    imbalance: float  # max/mean busy time; 1.0 = perfectly balanced

    @property
    def balanced(self) -> bool:
        """True when imbalance is below the 1.25 threshold."""
        return self.imbalance < 1.25


def _components(reports: Reports, level: str) -> List[str]:
    return sorted({comp for (comp, lvl) in reports if lvl == level})


def load_balance(reports: Reports) -> BalanceReport:
    """Busy-time balance from the OS-level reports.

    Uses CPU time where available (``cpu_time_us``), else exec time --
    matching how one would read Table 1 vs Table 3.
    """
    names = _components(reports, OS_LEVEL)
    if not names:
        raise ValueError("no OS-level reports present")
    busy = {}
    for name in names:
        data = reports[(name, OS_LEVEL)]
        value = data.get("cpu_time_us", data.get("exec_time_us"))
        if value is None:
            raise ValueError(f"report for {name!r} has neither cpu_time_us nor exec_time_us")
        busy[name] = int(value)
    mean = sum(busy.values()) / len(busy)
    bottleneck = max(busy, key=busy.get)
    imbalance = busy[bottleneck] / mean if mean > 0 else 1.0
    return BalanceReport(cpu_time_us=busy, bottleneck=bottleneck, imbalance=imbalance)


def communication_matrix(reports: Reports) -> Dict[str, Dict[str, int]]:
    """Per-component send/receive/bytes totals from application level."""
    out: Dict[str, Dict[str, int]] = {}
    for name in _components(reports, APPLICATION_LEVEL):
        data = reports[(name, APPLICATION_LEVEL)]
        out[name] = {
            "sends": data.get("sends", 0),
            "receives": data.get("receives", 0),
            "bytes_sent": data.get("bytes_sent", 0),
            "bytes_received": data.get("bytes_received", 0),
        }
    return out


def conservation_check(reports: Reports) -> Tuple[int, int]:
    """Total sends vs total receives across the assembly.

    In a quiesced pipeline every data message sent was received, so the
    totals must match; a mismatch means lost or unconsumed messages.
    """
    matrix = communication_matrix(reports)
    sends = sum(m["sends"] for m in matrix.values())
    receives = sum(m["receives"] for m in matrix.values())
    return sends, receives


def middleware_cost_share(reports: Reports) -> Dict[str, float]:
    """Fraction of each component's busy time spent in send+receive.

    High shares flag communication-bound components -- the quantity the
    paper's message-size tuning (section 5.4) aims to reduce.
    """
    out: Dict[str, float] = {}
    for name in _components(reports, MIDDLEWARE_LEVEL):
        mw = reports[(name, MIDDLEWARE_LEVEL)]
        os_data = reports.get((name, OS_LEVEL), {})
        busy_us = os_data.get("cpu_time_us", os_data.get("exec_time_us"))
        if not busy_us:
            continue
        comm_ns = mw["send"]["total_ns"] + mw["receive"]["total_ns"]
        out[name] = min(1.0, comm_ns / (busy_us * 1_000))
    return out


def pipeline_throughput(reports: Reports, makespan_ns: int, items_field: str = "deposits") -> Optional[float]:
    """Delivered items per simulated second, from whichever component
    deposits finished work (the Reorder/display side)."""
    if makespan_ns <= 0:
        raise ValueError(f"makespan must be positive, got {makespan_ns}")
    total = 0
    found = False
    for (comp, lvl), data in reports.items():
        if lvl == APPLICATION_LEVEL and data.get(items_field, 0) > 0:
            total += data[items_field]
            found = True
    if not found:
        return None
    return total / (makespan_ns / 1e9)


def backpressure_report(
    series: Mapping[str, List[Tuple[int, int]]]
) -> Dict[str, Dict[str, float]]:
    """Summarise per-mailbox queue-depth time series (from
    :func:`repro.trace.causal.queue_depth_series`).

    For each mailbox: the peak depth, the depth left at the end of the
    trace (non-zero means unconsumed messages -- the display sink, or a
    crashed receiver's backlog) and the time-weighted mean depth, which
    is the backpressure signal: a stage whose input mailbox dwells deep
    is the stage the pipeline is waiting on.
    """
    out: Dict[str, Dict[str, float]] = {}
    for mailbox, points in series.items():
        if not points:
            continue
        peak = max(depth for _, depth in points)
        final = points[-1][1]
        t0, t1 = points[0][0], points[-1][0]
        if t1 > t0:
            weighted = 0.0
            for (t_a, d_a), (t_b, _) in zip(points, points[1:]):
                weighted += d_a * (t_b - t_a)
            mean_depth = weighted / (t1 - t0)
        else:
            mean_depth = float(final)
        out[mailbox] = {
            "peak_depth": peak,
            "final_depth": final,
            "mean_depth": mean_depth,
            "events": len(points),
        }
    return out


def summarize(reports: Reports, makespan_ns: Optional[int] = None) -> Dict[str, Any]:
    """One-call overview combining all analyses."""
    balance = load_balance(reports)
    sends, receives = conservation_check(reports)
    out: Dict[str, Any] = {
        "bottleneck": balance.bottleneck,
        "imbalance": balance.imbalance,
        "balanced": balance.balanced,
        "total_sends": sends,
        "total_receives": receives,
        "messages_conserved": sends == receives,
        "middleware_cost_share": middleware_cost_share(reports),
    }
    if makespan_ns is not None:
        out["throughput_per_s"] = pipeline_throughput(reports, makespan_ns)
    return out
