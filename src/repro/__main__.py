"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:  # e.g. `python -m repro info | head`
    import os

    # Re-open stdout on devnull so the interpreter shutdown doesn't warn.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
raise SystemExit(code)
