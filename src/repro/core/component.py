"""The EMBera component: an active entity with a well-defined functionality.

Paper section 3.1: "The components in EMBera are active entities and each
component has its own execution flow" -- the behaviour generator, executed
by a runtime as a pthread (Linux), an OS21 task (STi7200) or a real Python
thread (native runtime).

The predefined *control interface* of the paper maps to the methods of
this class and of :class:`~repro.core.application.Application`:
creation (constructor / ``Application.create``), interconnection
(``Application.connect``), life-cycle (``Application.start/stop/join``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.errors import ConnectionError_, LifecycleError
from repro.core.interfaces import (
    DEFAULT_MAILBOX_BYTES,
    OBSERVATION_INTERFACE,
    ProvidedInterface,
    RequiredInterface,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.context import ComponentContext


class ComponentState:
    """Component life-cycle states (paper section 3.1).

    ``DEGRADED`` is the supervision extension: the component is lost but
    the application keeps running with its traffic rerouted or dropped
    (see :mod:`repro.faults.supervisor`).
    """
    CREATED = "CREATED"
    DEPLOYED = "DEPLOYED"
    RUNNING = "RUNNING"
    STOPPED = "STOPPED"
    FAILED = "FAILED"
    DEGRADED = "DEGRADED"


BehaviorFn = Callable[["ComponentContext"], Generator]


class Component:
    """A software entity with provided/required interfaces and a behaviour.

    Use either style::

        # function style
        comp = Component("idct", behavior=my_generator_fn)

        # subclass style
        class Idct(Component):
            def behavior(self, ctx):
                msg = yield from ctx.receive("input")
                ...

    The two ``introspection`` observation interfaces are created by
    default on every component (paper section 4.2).
    """

    def __init__(self, name: str, behavior: Optional[BehaviorFn] = None) -> None:
        if not name or "." in name:
            raise ValueError(f"invalid component name {name!r}")
        self.name = name
        self.state = ComponentState.CREATED
        self._behavior_fn = behavior
        self.provided: Dict[str, ProvidedInterface] = {}
        self.required: Dict[str, RequiredInterface] = {}
        # Observation interface pair, created by default.
        self.add_provided(OBSERVATION_INTERFACE, is_observation=True)
        self.add_required(OBSERVATION_INTERFACE, is_observation=True)
        #: Deployment hints consumed by runtimes (cpu pinning, node, stack...)
        self.placement: Dict[str, Any] = {}

    # -- structure (control interface: creation & introspection) ------------

    def add_provided(
        self,
        name: str,
        is_observation: bool = False,
        mailbox_bytes: int = DEFAULT_MAILBOX_BYTES,
        dynamic: bool = False,
    ) -> ProvidedInterface:
        """Declare a provided interface.

        After deployment this is only legal as part of a runtime-driven
        dynamic reconfiguration (``dynamic=True``), which takes care of
        binding the new interface to a transport.
        """
        if self.state != ComponentState.CREATED and not dynamic:
            raise LifecycleError(f"cannot add interfaces to {self.name!r} in state {self.state}")
        if name in self.provided:
            raise ConnectionError_(f"{self.name!r} already provides {name!r}")
        iface = ProvidedInterface(self, name, is_observation=is_observation, mailbox_bytes=mailbox_bytes)
        self.provided[name] = iface
        return iface

    def add_required(
        self, name: str, is_observation: bool = False, dynamic: bool = False
    ) -> RequiredInterface:
        """Declare a required interface (see :meth:`add_provided` for the
        ``dynamic`` escape hatch)."""
        if self.state != ComponentState.CREATED and not dynamic:
            raise LifecycleError(f"cannot add interfaces to {self.name!r} in state {self.state}")
        if name in self.required:
            raise ConnectionError_(f"{self.name!r} already requires {name!r}")
        iface = RequiredInterface(self, name, is_observation=is_observation)
        self.required[name] = iface
        return iface

    def get_provided(self, name: str) -> ProvidedInterface:
        """Look up a provided interface (error lists options)."""
        try:
            return self.provided[name]
        except KeyError:
            raise ConnectionError_(
                f"{self.name!r} has no provided interface {name!r}; "
                f"available: {sorted(self.provided)}"
            ) from None

    def get_required(self, name: str) -> RequiredInterface:
        """Look up a required interface (error lists options)."""
        try:
            return self.required[name]
        except KeyError:
            raise ConnectionError_(
                f"{self.name!r} has no required interface {name!r}; "
                f"available: {sorted(self.required)}"
            ) from None

    def set_contract(self, iface_name: str, contract: Any) -> "Component":
        """Attach an :class:`~repro.core.contracts.InterfaceContract` to a
        provided or required interface (provided wins on a name clash).
        The observation layer checks it at runtime when telemetry is
        enabled.  Returns self for chaining."""
        iface = self.provided.get(iface_name) or self.required.get(iface_name)
        if iface is None:
            raise ConnectionError_(
                f"{self.name!r} has no interface {iface_name!r}; "
                f"available: {sorted(self.provided) + sorted(self.required)}"
            )
        if iface.is_observation:
            raise ConnectionError_(
                f"cannot attach a contract to observation interface "
                f"{iface.qualified_name}"
            )
        iface.contract = contract
        return self

    def interfaces(self) -> List[tuple]:
        """All interfaces as ``(name, type)`` pairs: provided first, then
        required, each in creation order -- the Figure 5 listing order."""
        out = [(p.name, "provided") for p in self.provided.values()]
        out += [(r.name, "required") for r in self.required.values()]
        return out

    def functional_provided(self) -> List[ProvidedInterface]:
        """Provided interfaces excluding the observation pair."""
        return [p for p in self.provided.values() if not p.is_observation]

    def functional_required(self) -> List[RequiredInterface]:
        """Required interfaces excluding the observation pair."""
        return [r for r in self.required.values() if not r.is_observation]

    def interface_bytes(self) -> int:
        """Memory footprint of this component's provided interfaces -- the
        Table 1 increment over the bare thread stack."""
        return sum(p.mailbox_bytes for p in self.provided.values())

    # -- recovery contract (control interface, see docs/robustness.md) -------

    def snapshot(self) -> Optional[Dict[str, Any]]:
        """Return a JSON/deepcopy-able dict of the component's resumable
        state, or ``None`` when no consistent snapshot is possible right
        now (mid-transaction) or the component does not support
        checkpointing at all.

        The contract: ``restore(snapshot())`` followed by a fresh
        ``behavior()`` generator must reproduce the same outputs, in the
        same order, as the uninterrupted run -- given the same inputs are
        re-delivered.  Components that never return a state fall back to
        full input replay from epoch 0 (see :mod:`repro.recovery`).
        """
        return None

    def restore(self, state: Dict[str, Any]) -> None:
        """Reinstall a state previously returned by :meth:`snapshot`.
        Called by the recovery manager before the supervisor restarts the
        behaviour.  The default is a no-op (stateless component)."""

    # -- behaviour ------------------------------------------------------------

    def behavior(self, ctx: "ComponentContext") -> Generator:
        """Override in subclasses, or pass ``behavior=`` to the constructor."""
        if self._behavior_fn is None:
            raise LifecycleError(f"component {self.name!r} has no behaviour")
        return self._behavior_fn(ctx)

    # -- placement hints ----------------------------------------------------------

    def place(self, **hints: Any) -> "Component":
        """Attach deployment hints (``cpu=``, ``node=``, ``priority=``...).

        Returns self for chaining.
        """
        self.placement.update(hints)
        return self

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Component {self.name!r} {self.state}>"
