"""EMBera error hierarchy."""

from __future__ import annotations


class EmberaError(Exception):
    """Base class for component-model errors."""


class ConnectionError_(EmberaError):
    """Invalid interface wiring (unknown interface, double connection...).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class LifecycleError(EmberaError):
    """Operation incompatible with the component/application state."""


class ObservationError(EmberaError):
    """Malformed observation request or unavailable observation level."""


class DeadlineError(EmberaError):
    """A blocking receive exceeded its deadline.

    Carries enough context for a supervisor (or a test) to act on it:
    the component, the interface it was blocked on, the deadline and the
    time actually elapsed.
    """

    def __init__(
        self,
        component: str,
        interface: str,
        timeout_ns: int,
        elapsed_ns: int | None = None,
    ) -> None:
        self.component = component
        self.interface = interface
        self.timeout_ns = int(timeout_ns)
        self.elapsed_ns = int(elapsed_ns) if elapsed_ns is not None else self.timeout_ns
        super().__init__(
            f"receive on {component}.{interface} timed out after "
            f"{self.elapsed_ns / 1e6:.3f} ms (deadline {self.timeout_ns / 1e6:.3f} ms)"
        )


class InjectedFault(EmberaError):
    """A deterministic fault delivered by the fault-injection subsystem.

    Raised inside a component's execution flow so that supervision (and
    ordinary error propagation) treats injected faults exactly like
    organic ones.
    """

    def __init__(self, component: str, kind: str, detail: str = "") -> None:
        self.component = component
        self.kind = kind
        self.detail = detail
        super().__init__(
            f"injected {kind} fault in {component!r}" + (f": {detail}" if detail else "")
        )


class EscalationError(EmberaError):
    """A supervised component failed permanently (restart budget spent)."""

    def __init__(self, component: str, attempts: int, cause: BaseException) -> None:
        self.component = component
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"component {component!r} failed permanently after {attempts} restart(s); "
            f"last error: {cause!r}"
        )
