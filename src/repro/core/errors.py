"""EMBera error hierarchy."""

from __future__ import annotations


class EmberaError(Exception):
    """Base class for component-model errors."""


class ConnectionError_(EmberaError):
    """Invalid interface wiring (unknown interface, double connection...).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class LifecycleError(EmberaError):
    """Operation incompatible with the component/application state."""


class ObservationError(EmberaError):
    """Malformed observation request or unavailable observation level."""
