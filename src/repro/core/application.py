"""The application assembly: the paper's control interface.

"The control operations include component creation, component
interconnection and component life-cycle management (launching and
termination)" (section 3.1).  An :class:`Application` is the deployment
unit: a named set of components plus their connections, handed to a
runtime for execution ("The deployment of any EMBera application is
carried out by explicitly invoking control functions into the main
application function", section 4.1).
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional, Tuple, Union

from repro.core.component import BehaviorFn, Component, ComponentState
from repro.core.errors import ConnectionError_, LifecycleError
from repro.core.interfaces import OBSERVATION_INTERFACE
from repro.core.observer import REPORTS_INTERFACE, ObserverComponent

ComponentRef = Union[str, Component]


class Application:
    """A set of interconnected components ready for deployment."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self.components: Dict[str, Component] = {}
        self.observer: Optional[ObserverComponent] = None
        self._sealed = False

    # -- creation ----------------------------------------------------------------

    def add(self, component: Component) -> Component:
        """Register a component under its (unique) name."""
        if self._sealed:
            raise LifecycleError(f"application {self.name!r} already deployed")
        if component.name in self.components:
            raise ConnectionError_(f"duplicate component name {component.name!r}")
        self.components[component.name] = component
        return component

    def create(
        self,
        name: str,
        behavior: Optional[BehaviorFn] = None,
        provides: Iterable[str] = (),
        requires: Iterable[str] = (),
        **placement,
    ) -> Component:
        """Convenience constructor: create, declare interfaces, add."""
        comp = Component(name, behavior=behavior)
        for p in provides:
            comp.add_provided(p)
        for r in requires:
            comp.add_required(r)
        if placement:
            comp.place(**placement)
        return self.add(comp)

    def _resolve(self, ref: ComponentRef) -> Component:
        if isinstance(ref, Component):
            if ref.name not in self.components or self.components[ref.name] is not ref:
                raise ConnectionError_(f"component {ref.name!r} not part of {self.name!r}")
            return ref
        try:
            return self.components[ref]
        except KeyError:
            raise ConnectionError_(
                f"no component {ref!r} in application {self.name!r}; "
                f"have: {sorted(self.components)}"
            ) from None

    # -- interconnection ------------------------------------------------------------

    def connect(
        self,
        src: ComponentRef,
        required_name: str,
        dst: ComponentRef,
        provided_name: str,
    ) -> None:
        """Bind ``src.required_name`` to ``dst.provided_name``."""
        source = self._resolve(src)
        target = self._resolve(dst)
        source.get_required(required_name).connect(target.get_provided(provided_name))

    def connections(self) -> List[Tuple[str, str]]:
        """All established connections as qualified-name pairs."""
        out = []
        for comp in self.components.values():
            for req in comp.required.values():
                if req.target is not None:
                    out.append((req.qualified_name, req.target.qualified_name))
        return out

    # -- observation wiring ---------------------------------------------------------

    def attach_observer(
        self,
        observer: Optional[ObserverComponent] = None,
        targets: Optional[Iterable[ComponentRef]] = None,
    ) -> ObserverComponent:
        """Create (or take) an observer and wire the observation interfaces
        of the target components (default: every functional component)."""
        if self.observer is not None:
            raise ConnectionError_(f"application {self.name!r} already has an observer")
        observer = observer or ObserverComponent()
        self.add(observer)
        self.observer = observer
        if targets is None:
            picked = [c for c in self.components.values() if c is not observer]
        else:
            picked = [self._resolve(t) for t in targets]
        for comp in picked:
            req_name = observer.register_target(comp)
            observer.get_required(req_name).connect(comp.get_provided(OBSERVATION_INTERFACE))
            comp.get_required(OBSERVATION_INTERFACE).connect(
                observer.get_provided(REPORTS_INTERFACE)
            )
        return observer

    # -- validation --------------------------------------------------------------------

    def validate(self) -> None:
        """Check the assembly is deployable: every functional required
        interface must be connected (observation wiring is optional)."""
        if not self.components:
            raise ConnectionError_(f"application {self.name!r} has no components")
        for comp in self.components.values():
            for req in comp.functional_required():
                if not req.connected:
                    raise ConnectionError_(
                        f"required interface {req.qualified_name} is not connected"
                    )

    def seal(self) -> None:
        """Called by runtimes at deployment; freezes the structure."""
        self.validate()
        self._sealed = True
        for comp in self.components.values():
            comp.state = ComponentState.DEPLOYED

    def add_dynamic(self, component: Component) -> Component:
        """Register a component created *after* deployment.

        Called by ``Runtime.add_component`` during dynamic
        reconfiguration; bypasses the seal but keeps name uniqueness.
        """
        if component.name in self.components:
            raise ConnectionError_(f"duplicate component name {component.name!r}")
        self.components[component.name] = component
        component.state = ComponentState.DEPLOYED
        return component

    def graph(self, include_observation: bool = False):
        """The assembly as a ``networkx.DiGraph``.

        Nodes are component names; an edge ``a -> b`` means a required
        interface of ``a`` is connected to a provided interface of ``b``
        (i.e. messages flow a -> b).  Edge data carries the interface
        names.  Observation wiring is hidden by default so the graph
        matches the paper's application figures.
        """
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for comp in self.components.values():
            if not include_observation and comp is self.observer:
                continue
            g.add_node(comp.name)
        for comp in self.components.values():
            for req in comp.required.values():
                if req.target is None:
                    continue
                if not include_observation and req.is_observation:
                    continue
                g.add_edge(
                    comp.name,
                    req.target.component.name,
                    required=req.name,
                    provided=req.target.name,
                )
        return g

    def functional_components(self) -> List[Component]:
        """Components excluding the observer."""
        return [
            c
            for c in self.components.values()
            if not isinstance(c, ObserverComponent)
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Application {self.name!r} components={len(self.components)}>"
