"""Messages: the unit of EMBera communication.

Communication is "a simple one way asynchronous message-oriented
mechanism" (paper section 4.1).  Every message carries a *kind* so the
observation layer can count application traffic (Table 2 counts data
messages) separately from control and observation traffic.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

DATA = "data"
CONTROL = "control"
OBSERVATION = "observation"

_KINDS = (DATA, CONTROL, OBSERVATION)

#: Fixed per-message header footprint (sender id, tag, seq, size).
MESSAGE_HEADER_BYTES = 32


def payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a payload for copy-cost accounting."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    return int(sys.getsizeof(payload))


#: Span id meaning "no causal context" (root of a causal chain).
NO_SPAN = 0


@dataclass
class Message:
    """One message in transit between two interfaces."""

    payload: Any
    kind: str = DATA
    tag: str = ""
    src: str = ""
    src_interface: str = ""
    seq: int = 0
    size_bytes: int = -1  # -1: estimate from payload at send time
    sent_at_us: Optional[int] = None
    #: Causal identity: every send/deposit stamps a globally unique,
    #: monotonically increasing span id, and ``cause`` carries the span of
    #: the message whose reception triggered this one (NO_SPAN for chain
    #: roots).  Receives record the (cause -> span) edge, so offline
    #: analysis can reconstruct end-to-end causal chains across
    #: components, runtimes and the EMBX transport.
    span: int = NO_SPAN
    cause: int = NO_SPAN
    #: Durable-delivery sequence number (see :mod:`repro.recovery`): a
    #: contiguous per-connection counter stamped by the recovery hook on
    #: data and control sends.  0 means "not under delivery guarantees"
    #: (no recovery manager installed, observation traffic, deposits);
    #: receivers dedup and gap-detect by this, never by ``seq``/``span``
    #: (which change on retransmission).
    dseq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown message kind {self.kind!r}; expected one of {_KINDS}")
        if self.size_bytes == -1:
            self.size_bytes = payload_nbytes(self.payload) + MESSAGE_HEADER_BYTES
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    @property
    def is_data(self) -> bool:
        """True for application data messages (Table 2 counting)."""
        return self.kind == DATA

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Message {self.kind}:{self.tag or '-'} from={self.src or '?'} "
            f"seq={self.seq} {self.size_bytes}B>"
        )
