"""Contract-aware interfaces: declarative QoS contracts checked by the
observation layer.

Beugnard et al. (*Contract Aware Components, 10 years after*) classify
component contracts in four levels; the interesting two for an MPSoC
observer are level 3 (synchronization: ordering) and level 4 (QoS:
rates and deadlines).  This module makes the paper's *passive* observer
the enforcement point the ROADMAP asks for: an
:class:`InterfaceContract` attaches to a provided or required interface
(:meth:`repro.core.component.Component.set_contract`), and a
:class:`ContractChecker` validates the component's live telemetry
stream (:mod:`repro.metrics.telemetry`) against it -- no application
code changes, exactly like every other observation concern.

Violations surface three ways at once:

- a ``contract_violations_total{component,iface,kind}`` counter in the
  metrics registry (exporters, ``repro top``, the observer report);
- a ``contract``/``violation`` INSTANT event in the causal trace (when
  tracing is enabled), carrying the offending span id so the violation
  joins the causal chain;
- the checker's :meth:`~ContractChecker.summary`, which the observer
  folds into the application-level report.

Checks:

``deadline_ns``
    Per-message delivery deadline: receive-side delivery latency
    (``now - sent_at``) must not exceed it.  Checked per message.
``ordered``
    Per-sender sequence monotonicity on the receive side; duplicates
    and reorderings both trip it.  Checked per message.
``min_rate_hz`` / ``max_rate_hz``
    Message rate per telemetry window.  ``max`` is checked on every
    closed window; ``min`` only on *interior* windows (after the
    interface's first message, excluding the final partial window), so
    warm-up and drain don't false-positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.trace.events import INSTANT

#: Violation kinds (the ``kind`` label on the violation counter).
DEADLINE = "deadline"
ORDERING = "ordering"
RATE = "rate"


@dataclass(frozen=True)
class InterfaceContract:
    """A declarative QoS contract for one interface.

    All fields are optional; ``None`` / ``False`` means "not checked".
    Rates are in messages per second of sim time; the deadline is in
    nanoseconds of delivery latency.
    """

    deadline_ns: Optional[int] = None
    min_rate_hz: Optional[float] = None
    max_rate_hz: Optional[float] = None
    ordered: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError(f"deadline_ns must be positive, got {self.deadline_ns}")
        for field_name in ("min_rate_hz", "max_rate_hz"):
            rate = getattr(self, field_name)
            if rate is not None and rate <= 0:
                raise ValueError(f"{field_name} must be positive, got {rate}")
        if (
            self.min_rate_hz is not None
            and self.max_rate_hz is not None
            and self.min_rate_hz > self.max_rate_hz
        ):
            raise ValueError(
                f"min_rate_hz {self.min_rate_hz} exceeds max_rate_hz {self.max_rate_hz}"
            )

    @property
    def checks_anything(self) -> bool:
        """True when at least one clause is active."""
        return (
            self.deadline_ns is not None
            or self.min_rate_hz is not None
            or self.max_rate_hz is not None
            or self.ordered
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for reports and command help)."""
        out: Dict[str, Any] = {}
        if self.name:
            out["name"] = self.name
        if self.deadline_ns is not None:
            out["deadline_ns"] = self.deadline_ns
        if self.min_rate_hz is not None:
            out["min_rate_hz"] = self.min_rate_hz
        if self.max_rate_hz is not None:
            out["max_rate_hz"] = self.max_rate_hz
        if self.ordered:
            out["ordered"] = True
        return out


class ContractChecker:
    """Validates one component's telemetry stream against its interface
    contracts.  Driven by :class:`repro.metrics.telemetry.ComponentTelemetry`
    (per-message hooks) and the registry's window-roll hook (rates)."""

    __slots__ = (
        "component", "receive_contracts", "send_contracts",
        "_registry", "_tracer", "_counters", "violations",
        "_last_seq", "_window_counts", "_first_window",
    )

    def __init__(
        self,
        component: str,
        receive_contracts: Dict[str, InterfaceContract],
        send_contracts: Dict[str, InterfaceContract],
        registry,
        tracer=None,
    ) -> None:
        self.component = component
        self.receive_contracts = receive_contracts
        self.send_contracts = send_contracts
        self._registry = registry
        self._tracer = tracer
        self._counters: Dict[Tuple[str, str], Any] = {}
        #: (iface, kind) -> count, the observer-report view.
        self.violations: Dict[Tuple[str, str], int] = {}
        #: (iface, src) -> last seen sender seq (ordering clause).
        self._last_seq: Dict[Tuple[str, str], int] = {}
        #: iface -> messages in the currently open window (rate clauses).
        self._window_counts: Dict[str, int] = {}
        #: iface -> window index of the interface's first message.
        self._first_window: Dict[str, int] = {}

    # -- per-message clauses ---------------------------------------------------

    def on_send(self, iface: str, message, ts_ns: int) -> None:
        """Send-side hook: rate accounting for required-interface contracts."""
        contract = self.send_contracts.get(iface)
        if contract is None:
            return
        self._count_for_rate(iface, contract, ts_ns)

    def on_receive(self, iface: str, message, latency_ns: int, ts_ns: int) -> None:
        """Receive-side hook: deadline and ordering clauses, rate accounting."""
        contract = self.receive_contracts.get(iface)
        if contract is None:
            return
        deadline = contract.deadline_ns
        if deadline is not None and latency_ns > deadline:
            self._violate(
                iface, DEADLINE,
                latency_ns=latency_ns, deadline_ns=deadline,
                src=message.src, span=message.span,
            )
        if contract.ordered:
            key = (iface, message.src)
            last = self._last_seq.get(key)
            if last is not None and message.seq <= last:
                self._violate(
                    iface, ORDERING,
                    seq=message.seq, last_seq=last,
                    src=message.src, span=message.span,
                )
            else:
                self._last_seq[key] = message.seq
        self._count_for_rate(iface, contract, ts_ns)

    def _count_for_rate(self, iface: str, contract: InterfaceContract, ts_ns: int) -> None:
        if contract.min_rate_hz is None and contract.max_rate_hz is None:
            return
        if iface not in self._first_window:
            self._first_window[iface] = ts_ns // self._registry.window_ns
        self._window_counts[iface] = self._window_counts.get(iface, 0) + 1

    # -- per-window clauses ----------------------------------------------------

    def on_window(self, index: int, start_ns: int, end_ns: int, final: bool) -> None:
        """Registry roll hook: evaluate rate clauses over the closing
        window.  Runs before the window's deltas are cut, so rate
        violations land in the window they judge."""
        window_s = (end_ns - start_ns) / 1e9
        for iface, contract in self._rate_contracts():
            n = self._window_counts.pop(iface, 0)
            first = self._first_window.get(iface)
            if first is None:
                continue  # no traffic yet: nothing to judge
            max_rate = contract.max_rate_hz
            if max_rate is not None and n > max_rate * window_s:
                self._violate(
                    iface, RATE, messages=n, window_index=index,
                    limit_hz=max_rate, bound="max",
                )
            min_rate = contract.min_rate_hz
            # Interior windows only: the first window starts mid-stream
            # and the final one ends mid-stream.
            if (
                min_rate is not None
                and not final
                and index > first
                and n < min_rate * window_s
            ):
                self._violate(
                    iface, RATE, messages=n, window_index=index,
                    limit_hz=min_rate, bound="min",
                )

    def _rate_contracts(self):
        for iface, contract in self.receive_contracts.items():
            if contract.min_rate_hz is not None or contract.max_rate_hz is not None:
                yield iface, contract
        for iface, contract in self.send_contracts.items():
            if contract.min_rate_hz is not None or contract.max_rate_hz is not None:
                yield iface, contract

    # -- violation sink --------------------------------------------------------

    def _violate(self, iface: str, kind: str, **details: Any) -> None:
        key = (iface, kind)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = self._registry.counter(
                "contract_violations_total",
                component=self.component, iface=iface, kind=kind,
            )
        counter.inc()
        self.violations[key] = self.violations.get(key, 0) + 1
        if self._tracer is not None:
            self._tracer.emit("contract", "violation", INSTANT,
                              iface=iface, kind=kind, **details)

    def summary(self) -> Dict[str, Any]:
        """Violation counts for the observer's application report."""
        by_iface: Dict[str, Dict[str, int]] = {}
        for (iface, kind), n in sorted(self.violations.items()):
            by_iface.setdefault(iface, {})[kind] = n
        contracts = {
            iface: c.to_dict() for iface, c in sorted(self.receive_contracts.items())
        }
        for iface, c in sorted(self.send_contracts.items()):
            contracts.setdefault(iface, c.to_dict())
        return {
            "contracts": contracts,
            "violations": sum(self.violations.values()),
            "violations_by_interface": by_iface,
        }
