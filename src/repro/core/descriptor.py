"""Deployment descriptors: JSON-portable application assemblies.

The paper motivates components as "a well-suited solution to the
programming and *deployment* problems" of SoC.  A descriptor captures an
assembly's structure -- components, interfaces, connections, placement
hints, observer wiring -- as plain JSON, so the same application can be
re-instantiated against any runtime, with behaviours supplied separately
(by name from a registry, or as prebuilt component objects for stateful
components like the MJPEG Fetch).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.core.application import Application
from repro.core.component import Component
from repro.core.errors import EmberaError
from repro.core.interfaces import DEFAULT_MAILBOX_BYTES

DESCRIPTOR_VERSION = 1

_JSON_SAFE = (str, int, float, bool, type(None))


class DescriptorError(EmberaError):
    """Malformed descriptor or missing behaviour/component binding."""


def app_to_descriptor(app: Application) -> Dict[str, Any]:
    """Serialise an assembly's structure (not behaviours) to a dict."""
    components = []
    for comp in app.components.values():
        if app.observer is not None and comp is app.observer:
            continue  # observer wiring is recorded separately
        components.append(
            {
                "name": comp.name,
                "class": type(comp).__name__,
                "provided": [
                    {"name": p.name, "mailbox_bytes": p.mailbox_bytes}
                    for p in comp.functional_provided()
                ],
                "required": [r.name for r in comp.functional_required()],
                "placement": {
                    k: v for k, v in comp.placement.items() if isinstance(v, _JSON_SAFE)
                },
            }
        )
    connections = []
    for comp in app.components.values():
        for req in comp.functional_required():
            if req.target is not None:
                connections.append(
                    {
                        "from": comp.name,
                        "required": req.name,
                        "to": req.target.component.name,
                        "provided": req.target.name,
                    }
                )
    descriptor: Dict[str, Any] = {
        "version": DESCRIPTOR_VERSION,
        "application": app.name,
        "components": components,
        "connections": connections,
    }
    if app.observer is not None:
        descriptor["observer"] = {
            "name": app.observer.name,
            "targets": list(app.observer.targets),
        }
    return descriptor


def app_from_descriptor(
    descriptor: Mapping[str, Any],
    behaviors: Optional[Mapping[str, Callable]] = None,
    components: Optional[Mapping[str, Component]] = None,
) -> Application:
    """Instantiate an application from a descriptor.

    Each component is bound either to a prebuilt :class:`Component`
    (``components[name]`` -- must already declare the descriptor's
    interfaces) or built as a plain component with
    ``behaviors[name]`` as its behaviour and interfaces created from the
    descriptor.
    """
    if descriptor.get("version") != DESCRIPTOR_VERSION:
        raise DescriptorError(
            f"unsupported descriptor version {descriptor.get('version')!r}"
        )
    behaviors = behaviors or {}
    components = components or {}
    app = Application(descriptor.get("application", "app"))
    for spec in descriptor["components"]:
        name = spec["name"]
        if name in components:
            comp = components[name]
            if comp.name != name:
                raise DescriptorError(
                    f"prebuilt component named {comp.name!r} supplied for {name!r}"
                )
            _check_interfaces(comp, spec)
        else:
            if name not in behaviors:
                raise DescriptorError(
                    f"no behaviour or prebuilt component for {name!r}; "
                    f"have behaviours for {sorted(behaviors)}"
                )
            comp = Component(name, behavior=behaviors[name])
            for prov in spec["provided"]:
                comp.add_provided(
                    prov["name"], mailbox_bytes=prov.get("mailbox_bytes", DEFAULT_MAILBOX_BYTES)
                )
            for req in spec["required"]:
                comp.add_required(req)
        if spec.get("placement"):
            comp.place(**spec["placement"])
        app.add(comp)
    for conn in descriptor["connections"]:
        app.connect(conn["from"], conn["required"], conn["to"], conn["provided"])
    observer_spec = descriptor.get("observer")
    if observer_spec:
        from repro.core.observer import ObserverComponent

        app.attach_observer(
            ObserverComponent(observer_spec.get("name", "observer")),
            targets=observer_spec.get("targets") or None,
        )
    return app


def _check_interfaces(comp: Component, spec: Mapping[str, Any]) -> None:
    declared_p = {p["name"] for p in spec["provided"]}
    actual_p = {p.name for p in comp.functional_provided()}
    declared_r = set(spec["required"])
    actual_r = {r.name for r in comp.functional_required()}
    if declared_p != actual_p or declared_r != actual_r:
        raise DescriptorError(
            f"prebuilt component {comp.name!r} interfaces "
            f"(provided={sorted(actual_p)}, required={sorted(actual_r)}) do not "
            f"match descriptor (provided={sorted(declared_p)}, required={sorted(declared_r)})"
        )


def save_descriptor(app: Application, path: Union[str, Path]) -> None:
    """Write the assembly descriptor as JSON."""
    Path(path).write_text(
        json.dumps(app_to_descriptor(app), indent=2, sort_keys=True), encoding="utf-8"
    )


def load_descriptor(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a JSON assembly descriptor."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
