"""Observation policies: configuring the observation context.

Paper section 3: EMBera must be configurable "to serve a specific
observation context", and the conclusion asks "how to select the events
to be observed".  A policy selects which levels a component's
observation service answers, which middleware operations are timed (with
optional sampling to bound overhead on target), and whether byte
accounting is kept.  Counters stay exact regardless -- they are the
cheap part and Table 2 depends on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.core.errors import ObservationError
from repro.core.observation import APPLICATION_LEVEL, LEVELS, MIDDLEWARE_LEVEL, OS_LEVEL


@dataclass(frozen=True)
class ObservationPolicy:
    """What a component's probe records and its service answers.

    Parameters
    ----------
    levels:
        Observation levels the service answers; querying a disabled
        level raises :class:`ObservationError` at the observer.
    time_middleware:
        Record send/receive durations at all (timers).
    sample_every:
        Record only every N-th middleware duration (1 = all).  Counters
        are unaffected.
    track_bytes:
        Keep byte totals per component.
    telemetry:
        Allow :func:`repro.metrics.telemetry.enable_telemetry` to attach
        live instruments (and contract checking) to this component's
        probe.  Telemetry is never sampled -- contracts must see every
        message -- so the only way to shed its cost is to turn it off.
    """

    levels: FrozenSet[str] = frozenset(LEVELS)
    time_middleware: bool = True
    sample_every: int = 1
    track_bytes: bool = True
    telemetry: bool = True

    def __post_init__(self) -> None:
        unknown = set(self.levels) - set(LEVELS)
        if unknown:
            raise ObservationError(f"unknown observation levels: {sorted(unknown)}")
        if self.sample_every < 1:
            raise ObservationError(f"sample_every must be >= 1, got {self.sample_every}")

    def allows_level(self, level: str) -> bool:
        """Whether the policy serves the given level."""
        return level in self.levels

    @classmethod
    def full(cls) -> "ObservationPolicy":
        """Everything on -- the default."""
        return cls()

    @classmethod
    def counters_only(cls) -> "ObservationPolicy":
        """Application-level counters only: minimal-overhead context."""
        return cls(
            levels=frozenset({APPLICATION_LEVEL}),
            time_middleware=False,
            track_bytes=False,
            telemetry=False,
        )

    @classmethod
    def sampled(cls, every: int) -> "ObservationPolicy":
        """All levels, but middleware timings sampled 1-in-``every``."""
        return cls(sample_every=every)


#: The default policy applied when none is configured.
DEFAULT_POLICY = ObservationPolicy.full()
