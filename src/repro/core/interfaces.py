"""Provided and required interfaces, and their connections.

Paper section 4.1: "A provided interface receives messages while a
required interface sends those messages.  It is also implemented as a
FIFO data structure, we have named mailbox.  A required interface
corresponds to a pointer towards a provided interface.  A connection is
established by setting the pointer on the required interface to a
specific provided interface."

Interface objects here are runtime-agnostic descriptors.  The runtime
attaches a *binding* (the actual mailbox / EMBX distributed object) to
each provided interface at deployment; the binding is the only part that
differs between platforms.

Observation interfaces (``introspection``) are created by default on
every component.  Their mailbox is a lightweight control channel owned by
the runtime, which is why the paper's Fetch component shows no interface
memory despite carrying them (Table 1 discussion).
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.core.errors import ConnectionError_

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.component import Component

#: Name of the default observation interface pair (matches Figure 5).
OBSERVATION_INTERFACE = "introspection"

#: Memory footprint charged for one functional provided interface on the
#: Linux implementation: a 2 MB mailbox buffer plus 410 kB of message-slot
#: structures = 2 458 kB, the increment observed in Table 1.
DEFAULT_MAILBOX_BYTES = 2458 * 1024


class ProvidedInterface:
    """A message sink: functionality this component offers."""

    __slots__ = (
        "component", "name", "is_observation", "binding", "mailbox_bytes",
        "connected_from", "contract",
    )

    def __init__(
        self,
        component: "Component",
        name: str,
        is_observation: bool = False,
        mailbox_bytes: int = DEFAULT_MAILBOX_BYTES,
    ) -> None:
        self.component = component
        self.name = name
        self.is_observation = is_observation
        #: Runtime-attached transport (mailbox, EMBX object...).
        self.binding: Any = None
        #: Bytes charged to the component for this interface's mailbox.
        #: Observation interfaces are runtime-owned and charge nothing.
        self.mailbox_bytes = 0 if is_observation else mailbox_bytes
        #: Required interfaces currently pointing here (the Fractal-style
        #: binding listing; grows/shrinks under dynamic reconfiguration).
        self.connected_from: list = []
        #: Optional :class:`~repro.core.contracts.InterfaceContract`
        #: checked by the observation layer (deadline/ordering/rate).
        self.contract: Any = None

    @property
    def qualified_name(self) -> str:
        """``component.interface`` display name."""
        return f"{self.component.name}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Provided {self.qualified_name}>"


class RequiredInterface:
    """A message source: functionality this component depends on.

    ``target`` is the paper's "pointer towards a provided interface".
    """

    __slots__ = ("component", "name", "is_observation", "target", "contract")

    def __init__(self, component: "Component", name: str, is_observation: bool = False) -> None:
        self.component = component
        self.name = name
        self.is_observation = is_observation
        self.target: Optional[ProvidedInterface] = None
        #: Optional :class:`~repro.core.contracts.InterfaceContract`
        #: checked by the observation layer (send-side rate clauses).
        self.contract: Any = None

    @property
    def connected(self) -> bool:
        """True when the pointer is set."""
        return self.target is not None

    @property
    def qualified_name(self) -> str:
        """``component.interface`` display name."""
        return f"{self.component.name}.{self.name}"

    def connect(self, provided: ProvidedInterface) -> None:
        """Set the pointer.  Reconnecting is an error; several required
        interfaces may share one provided interface (multi-sender mailbox)."""
        if self.target is not None:
            raise ConnectionError_(
                f"{self.qualified_name} already connected to {self.target.qualified_name}"
            )
        if provided.component is self.component:
            raise ConnectionError_(
                f"cannot connect {self.qualified_name} to the same component"
            )
        if self.is_observation != provided.is_observation:
            raise ConnectionError_(
                f"cannot mix observation and functional interfaces: "
                f"{self.qualified_name} -> {provided.qualified_name}"
            )
        self.target = provided
        provided.connected_from.append(self)

    def disconnect(self) -> None:
        """Clear the pointer (and the reverse binding listing)."""
        if self.target is not None and self in self.target.connected_from:
            self.target.connected_from.remove(self)
        self.target = None

    def __repr__(self) -> str:  # pragma: no cover
        to = self.target.qualified_name if self.target else "(unconnected)"
        return f"<Required {self.qualified_name} -> {to}>"
