"""Interface listing, formatted as in the paper's Figure 5.

>>> print(format_interfaces(idct1))          # doctest: +SKIP
Interfaces component [IDCT_1]
----------------------------
[Interface] [Type]
introspection provided
_fetchIdct1 provided
introspection required
idctReorder required
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.component import Component


def format_interfaces(component: "Component") -> str:
    """Render a component's interface listing in Figure 5 style."""
    lines = [
        f"Interfaces component [{component.name}]",
        "----------------------------",
        "[Interface] [Type]",
    ]
    for name, kind in component.interfaces():
        lines.append(f"{name} {kind}")
    return "\n".join(lines)


def structure_dict(component: "Component") -> dict:
    """Machine-readable structure: names, kinds, connection targets."""
    return {
        "component": component.name,
        "provided": [
            {"name": p.name, "observation": p.is_observation}
            for p in component.provided.values()
        ],
        "required": [
            {
                "name": r.name,
                "observation": r.is_observation,
                "connected_to": r.target.qualified_name if r.target else None,
            }
            for r in component.required.values()
        ],
    }
