"""The EMBera component model with first-class observation.

This package is the paper's contribution (sections 3 and 4):

- :class:`~repro.core.component.Component` -- an active software entity
  with *provided* and *required* interfaces and its own execution flow.
- :class:`~repro.core.application.Application` -- the assembly: component
  creation, interconnection and lifecycle (the paper's *control
  interface*).
- :class:`~repro.core.messages.Message` -- one-way asynchronous messages
  flowing through mailbox-backed provided interfaces.
- :mod:`repro.core.observation` -- the *observation interface*: every
  component carries a provided + required ``introspection`` interface
  pair by default, through which an
  :class:`~repro.core.observer.ObserverComponent` gathers OS-level,
  middleware-level and application-level reports without any change to
  component behaviour code.
- :mod:`repro.core.introspection` -- the Figure 5 interface listing.

Components are runtime-agnostic: behaviour generators interact with the
world only through :class:`~repro.core.context.ComponentContext`, so the
same component runs untouched on the native thread runtime and on both
simulated platforms -- the portability argument of the paper.
"""

from repro.core.application import Application
from repro.core.component import Component, ComponentState
from repro.core.context import ComponentContext
from repro.core.contracts import ContractChecker, InterfaceContract
from repro.core.errors import (
    ConnectionError_,
    DeadlineError,
    EmberaError,
    EscalationError,
    InjectedFault,
    LifecycleError,
)
from repro.core.interfaces import OBSERVATION_INTERFACE, ProvidedInterface, RequiredInterface
from repro.core.introspection import format_interfaces
from repro.core.messages import CONTROL, DATA, OBSERVATION, Message, payload_nbytes
from repro.core.observation import (
    APPLICATION_LEVEL,
    MIDDLEWARE_LEVEL,
    OS_LEVEL,
    ObservationProbe,
    ObservationReply,
    ObservationRequest,
)
from repro.core.observer import ObserverComponent
from repro.core.obspolicy import ObservationPolicy

__all__ = [
    "APPLICATION_LEVEL",
    "Application",
    "CONTROL",
    "Component",
    "ComponentContext",
    "ComponentState",
    "ConnectionError_",
    "ContractChecker",
    "DeadlineError",
    "DATA",
    "InterfaceContract",
    "EmberaError",
    "EscalationError",
    "InjectedFault",
    "LifecycleError",
    "MIDDLEWARE_LEVEL",
    "Message",
    "OBSERVATION",
    "OBSERVATION_INTERFACE",
    "OS_LEVEL",
    "ObservationPolicy",
    "ObservationProbe",
    "ObservationReply",
    "ObservationRequest",
    "ObserverComponent",
    "ProvidedInterface",
    "RequiredInterface",
    "format_interfaces",
    "payload_nbytes",
]
