"""The EMBera observation layer.

Paper section 3.3: "MPSoC observation has to take into account at least
three levels: the system, the middleware and the application level."

- **OS level** -- component execution time and memory occupation.  The
  numbers come from the runtime (gettimeofday / task_time, stack size,
  interface structures), exposed through an adapter callable so each
  platform implements the same query its own way (sections 4.2 / 5.2).
- **Middleware level** -- execution times of the ``send`` and ``receive``
  primitives, recorded by interposition in the component context.
- **Application level** -- component structure (interface listing) and
  communication-operation counters.

A probe is attached per component by the runtime; behaviour code never
sees it.  Counters for Table 2 count *data* messages only -- control
(end-of-stream) and observation traffic are infrastructure, not
application communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.core.errors import ObservationError
from repro.core.messages import DATA, OBSERVATION, Message
from repro.metrics import Counter, Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.component import Component

OS_LEVEL = "os"
MIDDLEWARE_LEVEL = "middleware"
APPLICATION_LEVEL = "application"

LEVELS = (OS_LEVEL, MIDDLEWARE_LEVEL, APPLICATION_LEVEL)

#: Deferred-sample opcodes (first tuple element in the probe's buffer).
_SEND = 0
_RECV = 1


@dataclass(frozen=True)
class ObservationRequest:
    """Sent to a component's observation provided interface."""

    level: str
    query: str = "report"
    reply_tag: str = ""

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ObservationError(f"unknown observation level {self.level!r}")


@dataclass(frozen=True)
class ObservationReply:
    """Returned through the component's observation required interface."""

    component: str
    level: str
    data: Dict[str, Any]
    reply_tag: str = ""


class ObservationProbe:
    """Per-component accumulator fed by context interposition.

    ``policy`` (an :class:`~repro.core.obspolicy.ObservationPolicy`)
    selects what is recorded and which levels the observation service
    answers; ``None`` means everything.
    """

    def __init__(self, component: "Component", policy=None) -> None:
        self.component = component
        self.policy = policy
        self._op_index = 0
        #: Deferred middleware samples -- the tuple-buffer trick
        #: :meth:`~repro.trace.tracer.Tracer.emit` uses.  The hot path
        #: appends one plain tuple (``(_SEND, iface, dur)`` or
        #: ``(_RECV, iface, dur, latency)``); timers and per-interface
        #: dict inserts are folded lazily at report time.  Appending to a
        #: list is atomic under the GIL, so native-runtime threads share
        #: the probe without a lock.
        self._mw_samples: list = []
        self._send_timer = Timer(f"{component.name}.send")
        self._recv_timer = Timer(f"{component.name}.receive")
        #: End-to-end message latency (sender timestamp -> delivery).
        #: On OS21 the sender/receiver clocks are *local* per CPU, so this
        #: inherits their skew -- faithfully to the platform (sec. 5.2).
        self._latency_timer = Timer(f"{component.name}.latency")
        self._send_timers_by_iface: Dict[str, Timer] = {}
        self._recv_timers_by_iface: Dict[str, Timer] = {}
        self.data_sends = Counter(f"{component.name}.sends")
        self.data_receives = Counter(f"{component.name}.receives")
        self.deposits = Counter(f"{component.name}.deposits")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.started_at_us: Optional[int] = None
        self.ended_at_us: Optional[int] = None
        # Heap tracking (memory-evolution extension, paper section 6).
        self.heap_bytes = 0
        self.heap_peak = 0
        self.heap_timeline: list = []  # (time_us, heap_bytes) samples
        # Robustness extension: fault, restart and recovery accounting.
        # Fed by the fault injector and the supervisor (never by the
        # behaviour), reported next to the Table-2 counters.
        self.fault_counts: Dict[str, int] = {}
        self.restarts = 0
        self.recovery_ns: list = []  # per-restart downtime samples (MTTR)
        # Exactly-once recovery accounting (see repro.recovery): committed
        # checkpoints and their cost, messages replayed to this component
        # after a restart, duplicates discarded by sequence dedup.
        self.checkpoints = 0
        self.checkpoint_bytes = 0
        self.checkpoint_ns: list = []  # per-checkpoint capture cost samples
        self.replays = 0
        self.dedups = 0
        #: Runtime-provided OS-level report: ``fn() -> dict``.
        self.os_adapter: Optional[Callable[[], Dict[str, Any]]] = None
        #: Runtime-provided middleware extras (e.g. live queue depths).
        self.middleware_adapter: Optional[Callable[[], Dict[str, Any]]] = None
        #: Live metrics plane, attached by
        #: :func:`repro.metrics.telemetry.enable_telemetry`.  Unlike the
        #: timers above, telemetry is *not* subject to ``sample_every``:
        #: contract checking needs every message, and the streaming
        #: histograms are cheap enough to afford it.
        self.telemetry = None

    # -- deferred-sample folding ----------------------------------------------

    def _drain_samples(self) -> None:
        """Fold buffered middleware samples into the timers.

        Snapshot-then-delete (``buf[:n]`` / ``del buf[:n]``) so samples a
        concurrent native-runtime thread appends mid-drain survive for
        the next drain instead of being lost.
        """
        buf = self._mw_samples
        n = len(buf)
        if not n:
            return
        chunk = buf[:n]
        del buf[:n]
        send_timer = self._send_timer
        recv_timer = self._recv_timer
        by_send = self._send_timers_by_iface
        by_recv = self._recv_timers_by_iface
        for sample in chunk:
            iface, dur = sample[1], sample[2]
            if sample[0] == _SEND:
                send_timer.record(dur)
                timer = by_send.get(iface)
                if timer is None:
                    timer = by_send[iface] = Timer(iface)
                timer.record(dur)
            else:
                recv_timer.record(dur)
                timer = by_recv.get(iface)
                if timer is None:
                    timer = by_recv[iface] = Timer(iface)
                timer.record(dur)
                if sample[3] >= 0:
                    self._latency_timer.record(sample[3])

    # The timers stay part of the public surface; reading one folds the
    # pending samples first, so deferral is invisible to consumers.

    @property
    def send_timer(self) -> Timer:
        self._drain_samples()
        return self._send_timer

    @property
    def recv_timer(self) -> Timer:
        self._drain_samples()
        return self._recv_timer

    @property
    def latency_timer(self) -> Timer:
        self._drain_samples()
        return self._latency_timer

    @property
    def send_timers_by_iface(self) -> Dict[str, Timer]:
        self._drain_samples()
        return self._send_timers_by_iface

    @property
    def recv_timers_by_iface(self) -> Dict[str, Timer]:
        self._drain_samples()
        return self._recv_timers_by_iface

    # -- recording (called from ComponentContext) ----------------------------

    def _should_time(self) -> bool:
        policy = self.policy
        if policy is None:
            return True
        if not policy.time_middleware:
            return False
        self._op_index += 1
        return self._op_index % policy.sample_every == 0

    def _track_bytes(self) -> bool:
        return self.policy is None or self.policy.track_bytes

    def record_send(self, iface: str, message: Message, duration_ns: int) -> None:
        """Account one send operation (kind-aware; see class doc).

        Hot path: one tuple append, no timer math, no dict insert --
        those are deferred to :meth:`_drain_samples` at report time.
        """
        if message.kind == OBSERVATION:
            return  # observation traffic must not observe itself
        if self._should_time():
            self._mw_samples.append((_SEND, iface, duration_ns))
        tel = self.telemetry
        if tel is not None:
            # ComponentTelemetry.on_send, inlined: the telemetry plane
            # is always-on, and a per-event call into another module's
            # cold code measurably breaks the 1.05x overhead budget of
            # ``bench metrics_overhead`` (the samples appended here are
            # folded in batch at window rolls, see ComponentTelemetry).
            reg = tel.registry
            sent = message.sent_at_us
            ts = sent * 1_000 if sent is not None else reg.last_ns
            if ts > reg.last_ns:
                reg.last_ns = ts
            if ts >= reg._next_roll_ns:
                reg.advance(ts)
            entry = tel._send_cache.get(iface)
            if entry is None:
                entry = tel._make_send(iface)
            if message.kind == DATA:
                entry[3].append((duration_ns, message.size_bytes))
                if tel.checker is not None:
                    tel.checker.on_send(iface, message, ts)
            else:
                entry[3].append((duration_ns, -1))
        if message.kind == DATA:
            self.data_sends.inc()
            if self._track_bytes():
                self.bytes_sent += message.size_bytes

    def record_deposit(self, iface: str, message: Message, duration_ns: int) -> None:
        """A deposit into the component's own provided interface: tracked,
        but deliberately outside the send counters (see Table 2)."""
        if message.kind == OBSERVATION:
            return
        if message.kind == DATA:
            self.deposits.inc()

    def record_receive(
        self, iface: str, message: Message, duration_ns: int, now_us: Optional[int] = None
    ) -> None:
        """Account one receive operation (kind-aware)."""
        if message.kind == OBSERVATION:
            return
        if now_us is not None and message.sent_at_us is not None:
            # Clamp at zero: cross-CPU local clocks may run ahead.
            latency_ns = max(0, (now_us - message.sent_at_us)) * 1_000
        else:
            latency_ns = -1
        if self._should_time():
            self._mw_samples.append((_RECV, iface, duration_ns, latency_ns))
        tel = self.telemetry
        if tel is not None:
            # ComponentTelemetry.on_receive, inlined (see record_send).
            reg = tel.registry
            ts = now_us * 1_000 if now_us is not None else reg.last_ns
            if ts > reg.last_ns:
                reg.last_ns = ts
            if ts >= reg._next_roll_ns:
                reg.advance(ts)
            entry = tel._recv_cache.get(iface)
            if entry is None:
                entry = tel._make_recv(iface)
            if message.kind == DATA:
                entry[4].append((duration_ns, latency_ns, message.size_bytes))
                if tel.checker is not None:
                    tel.checker.on_receive(iface, message, latency_ns, ts)
            else:
                entry[4].append((duration_ns, -1, -1))
        if message.kind == DATA:
            self.data_receives.inc()
            if self._track_bytes():
                self.bytes_received += message.size_bytes

    def record_alloc(self, nbytes: int, time_us: int) -> None:
        """Account a heap allocation (memory-evolution timeline)."""
        self.heap_bytes += nbytes
        self.heap_peak = max(self.heap_peak, self.heap_bytes)
        self.heap_timeline.append((time_us, self.heap_bytes))

    def record_free(self, nbytes: int, time_us: int) -> None:
        """Account a heap release."""
        self.heap_bytes -= nbytes
        self.heap_timeline.append((time_us, self.heap_bytes))

    def record_fault(self, kind: str) -> None:
        """Account one fault event (injected or organic) by kind."""
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if self.telemetry is not None:
            self.telemetry.on_fault(kind)

    def record_restart(self, downtime_ns: int, now_ns: Optional[int] = None) -> None:
        """Account a supervised restart and its failure-to-restart
        downtime -- the sample stream behind the MTTR report.  ``now_ns``
        (sim time of the restart) places the sample in the right
        telemetry window, making MTTR a live series."""
        self.restarts += 1
        self.recovery_ns.append(int(downtime_ns))
        if self.telemetry is not None:
            self.telemetry.on_restart(downtime_ns, now_ns)

    def record_checkpoint(self, nbytes: int, duration_ns: int) -> None:
        """Account one committed recovery checkpoint: snapshot size and
        capture cost (host time -- checkpointing is tooling, not workload)."""
        self.checkpoints += 1
        self.checkpoint_bytes += int(nbytes)
        self.checkpoint_ns.append(int(duration_ns))
        if self.telemetry is not None:
            self.telemetry.on_checkpoint(nbytes)

    def record_replay(self, now_ns: Optional[int] = None) -> None:
        """Account one message replayed to this component after a restart."""
        self.replays += 1
        if self.telemetry is not None:
            self.telemetry.on_replay(now_ns)

    def record_dedup(self, now_ns: Optional[int] = None) -> None:
        """Account one duplicate discarded by delivery-sequence dedup."""
        self.dedups += 1
        if self.telemetry is not None:
            self.telemetry.on_dedup(now_ns)

    # -- reports --------------------------------------------------------------

    def report(self, level: str) -> Dict[str, Any]:
        """Build the report dict for one observation level."""
        if self.policy is not None and not self.policy.allows_level(level):
            raise ObservationError(
                f"level {level!r} disabled by the observation policy of "
                f"{self.component.name!r}"
            )
        if level == OS_LEVEL:
            return self._os_report()
        if level == MIDDLEWARE_LEVEL:
            return self._middleware_report()
        if level == APPLICATION_LEVEL:
            return self._application_report()
        raise ObservationError(f"unknown observation level {level!r}")

    def _os_report(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.os_adapter is not None:
            data.update(self.os_adapter())
        if self.started_at_us is not None:
            end = self.ended_at_us
            data.setdefault("started_at_us", self.started_at_us)
            if end is not None:
                data.setdefault("exec_time_us", end - self.started_at_us)
        if self.heap_timeline:
            data.setdefault("heap_bytes", self.heap_bytes)
            data.setdefault("heap_peak_bytes", self.heap_peak)
            data.setdefault("heap_timeline", list(self.heap_timeline))
        return data

    def _middleware_report(self) -> Dict[str, Any]:
        data = {
            "send": self.send_timer.snapshot(),
            "receive": self.recv_timer.snapshot(),
            "latency": self.latency_timer.snapshot(),
            "send_by_interface": {
                name: t.snapshot() for name, t in self.send_timers_by_iface.items()
            },
            "receive_by_interface": {
                name: t.snapshot() for name, t in self.recv_timers_by_iface.items()
            },
        }
        if self.middleware_adapter is not None:
            data.update(self.middleware_adapter())
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.interface_summary()
        return data

    def _application_report(self) -> Dict[str, Any]:
        recovery = self.recovery_ns
        report = {
            "structure": self.component.interfaces(),
            "sends": self.data_sends.snapshot(),
            "receives": self.data_receives.snapshot(),
            "deposits": self.deposits.snapshot(),
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "faults": {
                "injected": dict(self.fault_counts),
                "restarts": self.restarts,
                "mttr_us": (sum(recovery) // len(recovery)) // 1_000 if recovery else 0,
            },
            "recovery": {
                "checkpoints": self.checkpoints,
                "checkpoint_bytes": self.checkpoint_bytes,
                "checkpoint_mean_ns": (
                    sum(self.checkpoint_ns) // len(self.checkpoint_ns)
                    if self.checkpoint_ns else 0
                ),
                "replayed": self.replays,
                "deduped": self.dedups,
            },
        }
        if self.telemetry is not None:
            summary = self.telemetry.contract_summary()
            if summary:
                report["contracts"] = summary
        return report


def observation_service_behavior(ctx, probe: ObservationProbe):
    """The per-component observation servicing flow.

    Spawned by the runtime next to each component (an interceptor, in
    CORBA terms): consumes :class:`ObservationRequest` messages arriving
    on the component's ``introspection`` provided interface and answers
    through its ``introspection`` required interface.  Terminates on a
    control message tagged ``"shutdown"``.
    """
    from repro.core.interfaces import OBSERVATION_INTERFACE

    while True:
        msg = yield from ctx.receive(OBSERVATION_INTERFACE)
        if msg.kind != OBSERVATION:
            if msg.tag == "shutdown":
                return
            continue  # ignore stray traffic on the control channel
        request = msg.payload
        if not isinstance(request, ObservationRequest):
            continue
        try:
            data = probe.report(request.level)
        except ObservationError as error:
            data = {"error": str(error)}
        reply = ObservationReply(
            component=ctx.component.name,
            level=request.level,
            data=data,
            reply_tag=request.reply_tag,
        )
        yield from ctx.send(OBSERVATION_INTERFACE, reply, kind=OBSERVATION)
