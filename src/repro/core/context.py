"""The component's window onto the world.

A behaviour generator interacts exclusively through its
:class:`ComponentContext` -- sending on required interfaces, receiving on
provided interfaces, declaring computational work.  Every method that can
block or cost time is a *generator* used with ``yield from``, which is
what lets one behaviour run unmodified on the simulated platforms (where
the yields carry scheduling commands) and on the native thread runtime
(where the generators perform real blocking calls and yield nothing).

The context is also the observation interposition point: send/receive are
timed and counted by the component's
:class:`~repro.core.observation.ObservationProbe` here, so observation
requires no change to behaviour code -- the paper's central claim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import count
from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.core.errors import ConnectionError_
from repro.core.messages import DATA, NO_SPAN, Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.component import Component
    from repro.core.observation import ObservationProbe

#: Transfer verdicts returned by a fault hook's ``on_transfer``.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"


class ComponentContext(ABC):
    """Abstract runtime services for one component."""

    def __init__(self, component: "Component", probe: Optional["ObservationProbe"] = None) -> None:
        self.component = component
        self.probe = probe
        self._seq = 0
        #: Span allocator shared across the whole deployment (the runtime
        #: installs its own at deploy time so spans are globally unique);
        #: ``next()`` on an itertools.count is atomic under CPython, so
        #: the native thread runtime needs no lock.
        self._span_source = count(1)
        #: Span of the most recently received message: the *cause* stamped
        #: into every message this component emits next, which is what
        #: chains causality through compute stages without touching
        #: behaviour code.
        self._cause = NO_SPAN
        #: The last message this context built (send or deposit) or
        #: returned (receive).  Tracing wrappers read it to attach causal
        #: identity to their events without re-plumbing every signature.
        self.last_message: Optional[Message] = None
        #: Optional fault-injection hook (see :mod:`repro.faults`).  The
        #: hook interposes on every transfer/receive exactly where the
        #: observation probe does, so faults -- like observation -- need
        #: no change to behaviour code.
        self.faults = None
        #: Optional exactly-once delivery hook (see :mod:`repro.recovery`).
        #: Interposes at the same points as ``faults``: stamps delivery
        #: sequence numbers and buffers retransmit copies on send, dedups
        #: duplicates and heals gaps on receive -- again with no change to
        #: behaviour code.
        self.recovery = None

    @property
    def name(self) -> str:
        """The owning component's name."""
        return self.component.name

    # -- runtime primitives (implemented per runtime) -----------------------

    @abstractmethod
    def now_ns(self) -> int:
        """Current timestamp in nanoseconds (platform clock)."""

    def now_us(self) -> int:
        """Microsecond timestamp -- the paper's gettimeofday granularity."""
        return self.now_ns() // 1_000

    @abstractmethod
    def _transfer(self, target, message: Message) -> Generator:
        """Move ``message`` into the provided interface ``target``'s
        binding, charging transport costs.  Generator."""

    @abstractmethod
    def _receive_from(self, provided, timeout_ns: Optional[int] = None) -> Generator:
        """Block until a message is available on ``provided``; return it.
        With ``timeout_ns`` set, raise
        :class:`~repro.core.errors.DeadlineError` when the deadline
        expires first.  Generator."""

    @abstractmethod
    def compute(self, opclass: str, units: float) -> Generator:
        """Declare ``units`` of ``opclass`` computational work.  Generator."""

    def sleep(self, delay_ns: int) -> Generator:  # pragma: no cover - runtime-specific
        """Suspend this execution flow for ``delay_ns`` (virtual time on
        the simulated runtimes, wall time on the native one).  Generator."""
        raise NotImplementedError

    def _depth_of(self, provided) -> int:  # pragma: no cover - runtime-specific
        """Current queue depth of a provided interface's binding (used by
        the mailbox-overflow fault model)."""
        raise NotImplementedError

    # -- public API used by behaviours ----------------------------------------

    def send(
        self,
        required_name: str,
        payload: Any,
        kind: str = DATA,
        tag: str = "",
        size_bytes: int = -1,
    ) -> Generator:
        """Send a message through a required interface (asynchronous).

        ``yield from ctx.send("output", block)``
        """
        req = self.component.get_required(required_name)
        if req.target is None:
            raise ConnectionError_(f"{req.qualified_name} is not connected")
        self._seq += 1
        message = Message(
            payload=payload,
            kind=kind,
            tag=tag,
            src=self.component.name,
            src_interface=required_name,
            seq=self._seq,
            size_bytes=size_bytes,
            sent_at_us=self.now_us(),
            span=next(self._span_source),
            cause=self._cause,
        )
        self.last_message = message
        t0 = self.now_ns()
        recovery = self.recovery
        if recovery is not None:
            # Stamp the delivery sequence and buffer a retransmit copy
            # *before* fault interposition: a message the injector drops
            # (or a crash mid-send) stays replayable from the buffer.
            recovery.on_send(self, required_name, req.target, message)
        faults = self.faults
        verdict = DELIVER
        if faults is not None:
            verdict = yield from faults.on_transfer(self, required_name, req.target, message)
        if verdict != DROP:
            yield from self._transfer(req.target, message)
            if verdict == DUPLICATE:
                yield from self._transfer(req.target, message)
        if self.probe is not None:
            # A dropped message was still *sent* by this component; the
            # loss happens in transport, so send accounting is unchanged.
            self.probe.record_send(required_name, message, self.now_ns() - t0)

    def receive(self, provided_name: str, timeout_ns: Optional[int] = None) -> Generator:
        """Receive the next message from a provided interface (blocking).

        ``msg = yield from ctx.receive("input")``

        ``timeout_ns`` arms a per-receive deadline: when it expires before
        a message arrives, :class:`~repro.core.errors.DeadlineError` is
        raised (on every runtime).
        """
        prov = self.component.get_provided(provided_name)
        faults = self.faults
        recovery = self.recovery
        t0 = self.now_ns()
        while True:
            if recovery is not None:
                # Checkpoint opportunity: the receive boundary is the one
                # point where every recoverable component's state is
                # consistent with its counters.
                recovery.before_receive(self)
            if faults is not None:
                yield from faults.before_receive(self, provided_name)
            message = yield from self._receive_from(prov, timeout_ns)
            if recovery is None or recovery.on_message(self, provided_name, message):
                break
            # Duplicate deduped or a sequence gap healed by front-requeued
            # replays: the popped message was not delivered -- poll again.
        if message.span != NO_SPAN:
            # Record the causal edge: whatever this component emits next
            # was caused by this reception.
            self._cause = message.span
        self.last_message = message
        if faults is not None:
            yield from faults.after_receive(self, provided_name, message)
        if recovery is not None:
            recovery.on_delivered(self, message)
        if self.probe is not None:
            self.probe.record_receive(
                provided_name, message, self.now_ns() - t0, now_us=self.now_us()
            )
        return message

    def deposit(
        self,
        provided_name: str,
        payload: Any,
        kind: str = DATA,
        tag: str = "",
    ) -> Generator:
        """Place a message into one of this component's *own* provided
        interfaces -- e.g. the Reorder component delivering reassembled
        frames into its ``display`` mailbox for the display controller to
        drain.  Deposits are not ``send`` operations: they do not count in
        the application-level communication counters (Table 2 shows
        Reorder with zero sends).

        ``yield from ctx.deposit("display", image)``
        """
        prov = self.component.get_provided(provided_name)
        self._seq += 1
        message = Message(
            payload=payload,
            kind=kind,
            tag=tag,
            src=self.component.name,
            src_interface=provided_name,
            seq=self._seq,
            sent_at_us=self.now_us(),
            span=next(self._span_source),
            cause=self._cause,
        )
        self.last_message = message
        t0 = self.now_ns()
        yield from self._transfer(prov, message)
        if self.probe is not None:
            self.probe.record_deposit(provided_name, message, self.now_ns() - t0)

    def try_receive(self, provided_name: str):
        """Non-blocking receive; returns the message or None.  Not a
        generator -- usable where polling semantics are wanted.

        Successful polls feed the observation probe just like blocking
        receives, so Table-2 receive counts stay correct for polling
        components (duration 0: the poll never blocked).
        """
        prov = self.component.get_provided(provided_name)
        recovery = self.recovery
        while True:
            message = self._try_receive_from(prov)
            if message is None:
                return None
            if recovery is None or recovery.on_message(self, provided_name, message):
                break
        if message.span != NO_SPAN:
            self._cause = message.span
        self.last_message = message
        if recovery is not None:
            recovery.on_delivered(self, message)
        if self.probe is not None:
            self.probe.record_receive(provided_name, message, 0, now_us=self.now_us())
        return message

    def _try_receive_from(self, provided):  # pragma: no cover - runtime-specific
        raise NotImplementedError

    # -- dynamic memory (the memory-evolution observation extension) --------

    def alloc(self, nbytes: int, label: str = "heap") -> Generator:
        """Allocate component heap memory from the platform.

        ``handle = yield from ctx.alloc(65536)``

        Allocations are charged to the component's memory domain (NUMA
        node / local SRAM) and tracked by the observation probe, feeding
        the paper's "evolution of memory during the execution" query.
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        yield from self.compute("syscall", 1)
        handle = self._alloc(nbytes, label)
        if self.probe is not None:
            self.probe.record_alloc(nbytes, self.now_us())
        return handle

    def free(self, handle) -> Generator:
        """Release a previous :meth:`alloc`.

        ``yield from ctx.free(handle)``
        """
        yield from self.compute("syscall", 1)
        nbytes = self._free(handle)
        if self.probe is not None:
            self.probe.record_free(nbytes, self.now_us())

    def _alloc(self, nbytes: int, label: str):  # pragma: no cover - runtime-specific
        raise NotImplementedError

    def _free(self, handle) -> int:  # pragma: no cover - runtime-specific
        raise NotImplementedError

    def log(self, text: str) -> None:
        """Debug logging hook; runtimes may route or drop it."""
