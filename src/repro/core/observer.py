"""The observer component.

Paper section 3.3: "The information obtained, accessible through the
observation interface, is gathered and analyzed by a new component
connected to the observation interfaces.  We have named it the observer
component."

Wiring (done by :meth:`repro.core.application.Application.attach_observer`):

- for each observed component ``C``, the observer gains a required
  observation interface ``obs_<C>`` connected to ``C``'s provided
  ``introspection`` interface (queries travel this way);
- ``C``'s required ``introspection`` interface is connected to the
  observer's provided ``reports`` interface (replies travel back).

Queries and replies are ordinary EMBera messages of kind ``observation``,
so observation uses exactly the communication machinery it observes --
but is excluded from the application-level counters.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.core.component import Component
from repro.core.errors import ObservationError
from repro.core.interfaces import OBSERVATION_INTERFACE
from repro.core.messages import OBSERVATION
from repro.core.observation import LEVELS, ObservationReply, ObservationRequest

#: Name of the observer's provided interface where replies arrive.
REPORTS_INTERFACE = "reports"


class ObserverComponent(Component):
    """Gathers observation reports from the components it is attached to."""

    def __init__(self, name: str = "observer") -> None:
        super().__init__(name)
        self.add_provided(REPORTS_INTERFACE, is_observation=True)
        self.targets: List[str] = []
        #: Accumulated reports keyed by ``(component, level)``.
        self.reports: Dict[Tuple[str, str], Dict[str, Any]] = {}

    # -- wiring (called by Application.attach_observer) ----------------------

    def required_name_for(self, target: str) -> str:
        """Observer-side interface name for a target."""
        return f"obs_{target}"

    def register_target(self, component: Component, dynamic: bool = False) -> str:
        """Declare intent to observe ``component``; returns the required
        interface name the application must connect.  ``dynamic=True``
        permits registration after the observer is deployed (runtime
        reconfiguration)."""
        if component.name in self.targets:
            raise ObservationError(f"{component.name!r} already observed")
        name = self.required_name_for(component.name)
        self.add_required(name, is_observation=True, dynamic=dynamic)
        self.targets.append(component.name)
        return name

    # -- query flows -----------------------------------------------------------

    def collect(
        self, ctx, plan: Iterable[Tuple[str, str]]
    ) -> Generator:
        """Query several ``(component, level)`` pairs; returns a dict.

        Runs as an execution flow of the observer: all requests are sent
        asynchronously first, then replies are matched by tag, so slow
        components do not serialise the collection.
        """
        plan = list(plan)
        pending: Dict[str, Tuple[str, str]] = {}
        for i, (target, level) in enumerate(plan):
            if level not in LEVELS:
                raise ObservationError(f"unknown observation level {level!r}")
            if target not in self.targets:
                raise ObservationError(
                    f"observer {self.name!r} is not attached to {target!r}; "
                    f"attached: {self.targets}"
                )
            tag = f"q{i}"
            request = ObservationRequest(level=level, reply_tag=tag)
            yield from ctx.send(
                self.required_name_for(target), request, kind=OBSERVATION
            )
            pending[tag] = (target, level)
        results: Dict[Tuple[str, str], Dict[str, Any]] = {}
        while pending:
            msg = yield from ctx.receive(REPORTS_INTERFACE)
            reply = msg.payload
            if not isinstance(reply, ObservationReply) or reply.reply_tag not in pending:
                continue
            key = pending.pop(reply.reply_tag)
            results[key] = reply.data
            self.reports[key] = reply.data
        return results

    def collect_all_levels(self, ctx, targets: Optional[Iterable[str]] = None) -> Generator:
        """Query every level of every (or the given) attached component."""
        names = list(targets) if targets is not None else list(self.targets)
        plan = [(t, level) for t in names for level in LEVELS]
        result = yield from self.collect(ctx, plan)
        return result

    def report_for(self, component: str, level: str) -> Dict[str, Any]:
        """A previously collected report (error when absent)."""
        try:
            return self.reports[(component, level)]
        except KeyError:
            raise ObservationError(
                f"no {level!r} report collected for {component!r}"
            ) from None

    def contract_violations(self) -> Dict[str, Any]:
        """Aggregate contract-violation counts across every collected
        application report (telemetry must be enabled for any to exist).

        Returns ``{"total": n, "by_component": {component: {iface:
        {kind: count}}}}`` -- the ``repro observe`` summary shape.
        """
        total = 0
        by_component: Dict[str, Any] = {}
        for (component, level), data in sorted(self.reports.items()):
            if level != "application":
                continue
            contracts = data.get("contracts")
            if not contracts:
                continue
            total += contracts.get("violations", 0)
            by_iface = contracts.get("violations_by_interface", {})
            if by_iface or contracts.get("contracts"):
                by_component[component] = {
                    "contracts": contracts.get("contracts", {}),
                    "violations": contracts.get("violations", 0),
                    "by_interface": by_iface,
                }
        return {"total": total, "by_component": by_component}
