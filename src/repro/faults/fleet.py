"""Fleet-scale chaos campaigns: a resumable cell orchestrator.

One *cell* is a single seeded chaos run (:func:`repro.faults.campaign.run_chaos_campaign`)
at one point of the campaign grid -- the cross product of

    seed x fault class x intensity x supervision policy x shard count.

The orchestrator fans hundreds of cells out across a pool of worker
processes, reaping crashed or hung workers, retrying failed cells with
backoff, and quarantining cells that keep failing.  Every artifact on
disk is an atomic, checksummed JSON document
(:func:`repro.recovery.durable.write_checksummed_json` -- the same
crash-consistency machinery the exactly-once recovery store uses), so
a ``kill -9`` of the orchestrator itself never leaves a torn file:

``DIR/campaign.json``
    The campaign manifest: the full grid configuration plus its
    canonical digest.  Written once; resume refuses a different config.
``DIR/refcache/s<seed>-sh<shards>.json``
    The reference-frame cache: per-frame sha256 hashes and the set
    digest of the fault-free run, computed **once per (seed, platform)**
    and shared by every cell on that row -- cells never re-run the
    reference.
``DIR/cells/<cell_id>.json``
    One completed cell result.  Deterministic by construction (virtual
    time only, no wall-clock fields), bound to the manifest by the
    config digest.
``DIR/cells/<cell_id>.quarantine.json``
    A cell the orchestrator gave up on after ``max_cell_attempts``
    (diagnostic only; resume retries quarantined cells afresh).
``DIR/aggregate.json``
    The campaign aggregate: every cell result in grid order, in
    canonical JSON.  Because cells are deterministic and the layout is
    canonical, an interrupted campaign that is resumed produces a
    **byte-identical** aggregate to an uninterrupted one -- the property
    the SIGKILL tests pin.

Resume (:func:`run_fleet_campaign` with ``resume=True``, or the
``repro campaign resume`` CLI) re-scans ``cells/``, keeps every valid
result whose digest matches the manifest, and executes only the missing
cells.  The decision-support layer (:mod:`repro.faults.decision`) reads
the aggregate and renders the Pareto frontier of supervision policies.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.campaign import (
    DEADLINE_US,
    _run_reference,
    frame_hashes,
    frames_digest,
    run_chaos_campaign,
)
from repro.faults.plan import CRASH, DROP, OVERFLOW, FaultPlan
from repro.faults.supervisor import (
    JITTER_FULL,
    DegradePolicy,
    HaltPolicy,
    RestartPolicy,
)
from repro.mjpeg.components import BATCHES_PER_IMAGE
from repro.mjpeg.stream import generate_stream
from repro.recovery.durable import (
    DurableError,
    atomic_write_bytes,
    config_digest,
    read_checksummed_json,
    write_checksummed_json,
)
from repro.sim.rng import RngRegistry

MANIFEST_NAME = "campaign.json"
AGGREGATE_NAME = "aggregate.json"
CELLS_DIR = "cells"
REFCACHE_DIR = "refcache"

#: Fault classes a cell can draw from the grid.  Each is a deterministic
#: plan template parameterized by (seed, intensity); ``mixed`` is the
#: legacy combined campaign plan (crashes + drops + duplicates).
FAULT_CLASSES = ("crash", "drop", "duplicate", "stall", "mixed")
INTENSITIES = ("light", "heavy")

#: End-of-stream-under-loss deadline handed to cells whose policy can
#: permanently sever an upstream (degrade/halt): the Reorder stage stops
#: waiting after this much *virtual* silence.  Far above any restart
#: backoff or stall (< 5 ms), so it only fires on genuine upstream death.
QUIESCENCE_NS = 50_000_000

_IDCTS = ("IDCT_1", "IDCT_2", "IDCT_3")


class FleetError(ValueError):
    """An ill-formed fleet campaign configuration or directory."""


# --------------------------------------------------------------------------
# Supervision-policy registry
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyProfile:
    """How one named supervision policy maps onto a campaign cell."""

    name: str
    #: Oracle mode for :attr:`repro.faults.campaign.CampaignResult.ok`.
    oracle: str
    #: Install exactly-once recovery alongside the supervisor.
    recover: bool = False
    #: Record an application failure in the result instead of raising
    #: (halt cells *expect* the app to fail).
    capture_errors: bool = False
    #: Reorder counts its live upstreams dynamically + quiescence
    #: deadline (policies that can sever upstreams for good).
    dynamic_upstream: bool = False
    #: Valid on the sharded platform (recovery is single-kernel only).
    sharded_ok: bool = True

    def build(self):
        """A fresh policy object for one cell run."""
        if self.name == "restart":
            return RestartPolicy(max_attempts=5, base_backoff_ns=200_000)
        if self.name == "restart-jitter":
            return RestartPolicy(
                max_attempts=5, base_backoff_ns=200_000, jitter_mode=JITTER_FULL
            )
        if self.name == "degrade":
            return DegradePolicy(detach_outbound=True)
        if self.name == "halt":
            return HaltPolicy()
        if self.name == "recover":
            return RestartPolicy(max_attempts=5, base_backoff_ns=200_000)
        raise FleetError(f"no builder for policy {self.name!r}")


POLICIES: Dict[str, PolicyProfile] = {
    "restart": PolicyProfile("restart", oracle="progress"),
    "restart-jitter": PolicyProfile("restart-jitter", oracle="progress"),
    "degrade": PolicyProfile(
        "degrade", oracle="survivors", capture_errors=True, dynamic_upstream=True
    ),
    "halt": PolicyProfile(
        "halt", oracle="survivors", capture_errors=True, dynamic_upstream=True
    ),
    "recover": PolicyProfile(
        "recover", oracle="exact", recover=True, sharded_ok=False
    ),
}


# --------------------------------------------------------------------------
# Grid: configuration and cells
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignConfig:
    """The full campaign grid, declaratively.

    The grid is the cross product of every axis; its canonical digest
    (:func:`repro.recovery.durable.config_digest` over :meth:`to_dict`)
    binds manifests, cell results and the aggregate together, so a
    resume against a *different* configuration is an error rather than a
    silently mixed campaign.
    """

    seeds: Tuple[int, ...]
    fault_classes: Tuple[str, ...] = FAULT_CLASSES
    intensities: Tuple[str, ...] = INTENSITIES
    policies: Tuple[str, ...] = ("restart", "degrade", "halt", "recover")
    shard_counts: Tuple[int, ...] = (1, 2)
    n_images: int = 4
    deadline_us: int = DEADLINE_US

    def __post_init__(self) -> None:
        if not self.seeds:
            raise FleetError("campaign needs at least one seed")
        for axis, singular, values, known in (
            ("fault_classes", "fault class", self.fault_classes, FAULT_CLASSES),
            ("intensities", "intensity", self.intensities, INTENSITIES),
            ("policies", "policy", self.policies, tuple(POLICIES)),
        ):
            if not values:
                raise FleetError(f"campaign axis {axis} is empty")
            for value in values:
                if value not in known:
                    raise FleetError(
                        f"unknown {singular} {value!r}; expected one of {known}"
                    )
            if len(set(values)) != len(values):
                raise FleetError(f"duplicate entries on campaign axis {axis}")
        if len(set(self.seeds)) != len(self.seeds):
            raise FleetError("duplicate campaign seeds")
        for shards in self.shard_counts:
            if shards < 1:
                raise FleetError(f"shard count must be >= 1, got {shards}")
        if len(set(self.shard_counts)) != len(self.shard_counts):
            raise FleetError("duplicate shard counts")
        if self.n_images < 3:
            raise FleetError(f"campaign needs at least 3 images, got {self.n_images}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seeds": list(self.seeds),
            "fault_classes": list(self.fault_classes),
            "intensities": list(self.intensities),
            "policies": list(self.policies),
            "shard_counts": list(self.shard_counts),
            "n_images": self.n_images,
            "deadline_us": self.deadline_us,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CampaignConfig":
        return CampaignConfig(
            seeds=tuple(data["seeds"]),
            fault_classes=tuple(data["fault_classes"]),
            intensities=tuple(data["intensities"]),
            policies=tuple(data["policies"]),
            shard_counts=tuple(data["shard_counts"]),
            n_images=int(data["n_images"]),
            deadline_us=int(data["deadline_us"]),
        )

    def digest(self) -> str:
        return config_digest(self.to_dict())


@dataclass(frozen=True)
class CellSpec:
    """One point of the campaign grid."""

    index: int
    seed: int
    fault_class: str
    intensity: str
    policy: str
    shards: int
    n_images: int

    @property
    def cell_id(self) -> str:
        """Stable, human-greppable identifier (also the result filename)."""
        return (
            f"c{self.index:05d}-s{self.seed}-{self.fault_class}."
            f"{self.intensity}-{self.policy}-sh{self.shards}"
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "cell_id": self.cell_id,
            "index": self.index,
            "seed": self.seed,
            "fault_class": self.fault_class,
            "intensity": self.intensity,
            "policy": self.policy,
            "shards": self.shards,
            "n_images": self.n_images,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CellSpec":
        return CellSpec(
            index=int(data["index"]),
            seed=int(data["seed"]),
            fault_class=data["fault_class"],
            intensity=data["intensity"],
            policy=data["policy"],
            shards=int(data["shards"]),
            n_images=int(data["n_images"]),
        )


def build_grid(config: CampaignConfig) -> List[CellSpec]:
    """Enumerate the campaign cells in canonical order.

    The order (seed, fault class, intensity, policy, shards) is part of
    the format: cell indices -- and therefore cell ids, result filenames
    and the aggregate layout -- are derived from it.  Combinations a
    policy cannot run (``recover`` on the sharded platform) are skipped,
    not errors, so the cross product stays declarative.
    """
    cells: List[CellSpec] = []
    index = 0
    for seed in config.seeds:
        for fault_class in config.fault_classes:
            for intensity in config.intensities:
                for policy in config.policies:
                    profile = POLICIES[policy]
                    for shards in config.shard_counts:
                        if shards > 1 and not profile.sharded_ok:
                            continue
                        cells.append(
                            CellSpec(
                                index=index,
                                seed=seed,
                                fault_class=fault_class,
                                intensity=intensity,
                                policy=policy,
                                shards=shards,
                                n_images=config.n_images,
                            )
                        )
                        index += 1
    if not cells:
        raise FleetError(
            "the campaign grid is empty (every combination was skipped); "
            "add a shard count of 1 or a policy other than 'recover'"
        )
    return cells


def build_cell_plan(
    seed: int, n_images: int, fault_class: str, intensity: str
) -> FaultPlan:
    """The deterministic fault plan of one cell.

    Receive-count triggers are drawn from seeded named streams
    (``fleet.<class>``), disjoint from the legacy ``campaign.*`` streams,
    so fleet schedules never perturb existing single-campaign seeds.
    """
    if fault_class not in FAULT_CLASSES:
        raise FleetError(
            f"unknown fault class {fault_class!r}; expected one of {FAULT_CLASSES}"
        )
    if intensity not in INTENSITIES:
        raise FleetError(
            f"unknown intensity {intensity!r}; expected one of {INTENSITIES}"
        )
    heavy = intensity == "heavy"
    per_idct = (n_images - 1) * BATCHES_PER_IMAGE // len(_IDCTS)
    if per_idct < 4:
        raise FleetError("stream too short for the fleet fault schedules")
    plan = FaultPlan(seed)
    if fault_class == "crash":
        rng = RngRegistry(seed).stream("fleet.crash")
        used = set()
        for k in range(3 if heavy else 1):
            component = _IDCTS[k % len(_IDCTS)]
            while True:
                on_receive = int(rng.integers(2, per_idct))
                if (component, on_receive) not in used:
                    used.add((component, on_receive))
                    break
            plan.crash(component, on_receive=on_receive)
    elif fault_class == "drop":
        plan.drop("IDCT_2", "idctReorder", probability=0.15 if heavy else 0.05)
        if heavy:
            plan.drop("IDCT_3", "idctReorder", probability=0.10)
    elif fault_class == "duplicate":
        plan.duplicate("IDCT_1", "idctReorder", probability=0.20 if heavy else 0.05)
        if heavy:
            plan.duplicate("IDCT_3", "idctReorder", probability=0.10)
    elif fault_class == "stall":
        rng = RngRegistry(seed).stream("fleet.stall")
        used = set()
        for k in range(3 if heavy else 1):
            component = _IDCTS[k % len(_IDCTS)]
            while True:
                on_receive = int(rng.integers(2, per_idct))
                if (component, on_receive) not in used:
                    used.add((component, on_receive))
                    break
            plan.stall(
                component,
                on_receive=on_receive,
                delay_ns=2_500_000 if heavy else 1_000_000,
            )
    else:  # mixed: the legacy combined campaign schedule
        from repro.faults.campaign import build_campaign_plan

        return build_campaign_plan(
            seed,
            n_images,
            drop_rate=0.08 if heavy else 0.03,
            crashes=3 if heavy else 1,
            duplicate_rate=0.08 if heavy else 0.03,
        ).validate()
    return plan.validate()


# --------------------------------------------------------------------------
# Reference-frame cache
# --------------------------------------------------------------------------


def reference_key(seed: int, shards: int) -> str:
    return f"s{seed}-sh{shards}"


def reference_path(root: str, seed: int, shards: int) -> str:
    return os.path.join(root, REFCACHE_DIR, f"{reference_key(seed, shards)}.json")


def build_reference_entry(seed: int, shards: int, n_images: int) -> Dict[str, Any]:
    """Run the fault-free reference once and distil it into the cacheable
    oracle: per-frame sha256 hashes plus the order-independent set digest."""
    stream = generate_stream(n_images, 96, 96, quality=75, seed=seed)
    frames = _run_reference(stream, shards=shards)
    hashes = frame_hashes(frames)
    return {
        "seed": seed,
        "shards": shards,
        "n_images": n_images,
        "hashes": {str(index): digest for index, digest in hashes.items()},
        "digest": frames_digest(frames),
    }


def load_reference(root: str, seed: int, shards: int, n_images: int) -> Dict[str, Any]:
    """Read one reference-cache entry, verifying it matches the campaign."""
    path = reference_path(root, seed, shards)
    body = read_checksummed_json(path)
    if body.get("n_images") != n_images or body.get("seed") != seed:
        raise DurableError(
            f"{path}: reference cache is for seed={body.get('seed')} "
            f"n_images={body.get('n_images')}, campaign wants seed={seed} "
            f"n_images={n_images}"
        )
    return body


def ensure_reference_cache(
    root: str, grid: List[CellSpec], progress: Optional[Callable[[str], None]] = None
) -> int:
    """Compute every missing/invalid reference entry the grid needs.
    Returns the number of entries (re)built; valid entries are reused."""
    os.makedirs(os.path.join(root, REFCACHE_DIR), exist_ok=True)
    needed = sorted({(cell.seed, cell.shards, cell.n_images) for cell in grid})
    built = 0
    for seed, shards, n_images in needed:
        path = reference_path(root, seed, shards)
        if os.path.exists(path):
            try:
                load_reference(root, seed, shards, n_images)
                continue  # valid cache hit
            except DurableError:
                pass  # torn/mismatched: rebuild below
        if progress:
            progress(f"reference: computing {reference_key(seed, shards)}")
        entry = build_reference_entry(seed, shards, n_images)
        write_checksummed_json(path, entry, dir_sync=False)
        built += 1
    return built


# --------------------------------------------------------------------------
# Cell execution (worker side)
# --------------------------------------------------------------------------


def cell_result_path(root: str, cell_id: str) -> str:
    return os.path.join(root, CELLS_DIR, f"{cell_id}.json")


def quarantine_path(root: str, cell_id: str) -> str:
    return os.path.join(root, CELLS_DIR, f"{cell_id}.quarantine.json")


def execute_cell(root: str, cell: CellSpec, deadline_us: int) -> Dict[str, Any]:
    """Run one cell against the cached reference; returns the
    deterministic result record (virtual-time metrics only -- anything
    wall-clock would break the byte-identical aggregate)."""
    profile = POLICIES[cell.policy]
    reference = load_reference(root, cell.seed, cell.shards, cell.n_images)
    hashes = {int(index): digest for index, digest in reference["hashes"].items()}
    plan = build_cell_plan(cell.seed, cell.n_images, cell.fault_class, cell.intensity)
    oracle = profile.oracle
    if oracle == "progress" and any(
        s.kind in (DROP, OVERFLOW, CRASH) for s in plan.specs
    ):
        # Message-destroying faults (drops, overflows, and crashes --
        # which consume the in-flight message that triggered them) can
        # legitimately wipe out every frame of a short stream; demanding
        # progress there would blame the supervision policy for loss only
        # exactly-once recovery can undo.  The claim drops to "whatever
        # survived is bit-exact".  Stall/delay/duplicate plans keep the
        # full progress demand: nothing is lost, so everything must come
        # out.
        oracle = "survivors"
    result = run_chaos_campaign(
        seed=cell.seed,
        n_images=cell.n_images,
        recover=profile.recover,
        metrics=True,
        deadline_us=deadline_us,
        plan=plan,
        policy=profile.build(),
        shards=cell.shards,
        oracle=oracle,
        capture_errors=profile.capture_errors,
        reference_hashes=hashes,
        reference_digest=reference["digest"],
        dynamic_upstream=profile.dynamic_upstream,
        quiescence_timeout_ns=QUIESCENCE_NS if profile.dynamic_upstream else None,
    )
    recovery_counts = {
        key: value
        for key, value in result.recovery.items()
        if isinstance(value, (int, bool))
    }
    return {
        "ok": result.ok,
        "oracle": result.oracle,
        "bit_exact": result.bit_exact,
        "error": result.error,
        "frames_expected": result.frames_expected,
        "frames_delivered": result.frames_delivered,
        "lost_frames": result.lost_frames,
        "digest": result.digest,
        "frames_digest": result.frames_digest,
        "reference_frames_digest": result.reference_frames_digest,
        "injected": dict(result.injected),
        "restarts": result.restarts,
        "mttr_us": result.mttr_us,
        "backoff_total_ns": result.backoff_total_ns,
        "makespan_ns": result.makespan_ns,
        "fault_trace_events": result.fault_trace_events,
        "contract_trace_events": result.contract_trace_events,
        "contract_violations": dict(result.contract_violations),
        "recovery": recovery_counts,
    }


def _cell_worker(root: str, cell_dict: Dict[str, Any], settings: Dict[str, Any]) -> None:
    """Worker-process entry point: run the cell, publish its result
    atomically.  A crash or SIGKILL at any point leaves either no file or
    a complete checksummed one -- never a torn result."""
    cell = CellSpec.from_dict(cell_dict)
    result = execute_cell(root, cell, settings["deadline_us"])
    write_checksummed_json(
        cell_result_path(root, cell.cell_id),
        {
            "format": 1,
            "campaign": settings["config_digest"],
            "cell": cell.describe(),
            "result": result,
        },
        dir_sync=False,
    )


# --------------------------------------------------------------------------
# Orchestrator (parent side)
# --------------------------------------------------------------------------


@dataclass
class FleetResult:
    """What one :func:`run_fleet_campaign` invocation did."""

    root: str
    n_cells: int
    #: Cells executed by *this* invocation.
    executed: int = 0
    #: Valid results found on disk before scheduling (resume hits).
    reused: int = 0
    #: Worker attempts that failed (timeout, crash, invalid result).
    failed_attempts: int = 0
    #: Reference-cache entries this invocation had to compute.
    references_built: int = 0
    quarantined: List[str] = field(default_factory=list)
    cells_ok: int = 0
    cells_failed: List[str] = field(default_factory=list)
    aggregate_path: str = ""
    aggregate_sha256: str = ""
    elapsed_s: float = 0.0

    @property
    def completed(self) -> int:
        return self.reused + self.executed

    @property
    def ok(self) -> bool:
        """Every cell completed and passed its oracle."""
        return (
            self.completed == self.n_cells
            and not self.quarantined
            and not self.cells_failed
        )

    def summary(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "n_cells": self.n_cells,
            "executed": self.executed,
            "reused": self.reused,
            "completed": self.completed,
            "failed_attempts": self.failed_attempts,
            "references_built": self.references_built,
            "quarantined": self.quarantined,
            "cells_ok": self.cells_ok,
            "cells_failed": self.cells_failed,
            "aggregate_sha256": self.aggregate_sha256,
            "elapsed_s": round(self.elapsed_s, 3),
            "ok": self.ok,
        }


def _load_cell_result(
    root: str, cell: CellSpec, digest: str
) -> Optional[Dict[str, Any]]:
    """A valid on-disk result for this cell under this campaign, or None."""
    path = cell_result_path(root, cell.cell_id)
    if not os.path.exists(path):
        return None
    try:
        body = read_checksummed_json(path)
    except DurableError:
        return None
    if (
        not isinstance(body, dict)
        or body.get("campaign") != digest
        or body.get("cell", {}).get("cell_id") != cell.cell_id
    ):
        return None
    return body


def _kill_worker(proc) -> None:
    proc.terminate()
    proc.join(timeout=1.0)
    if proc.is_alive():
        proc.kill()
        proc.join()


def write_manifest(root: str, config: CampaignConfig) -> str:
    """Publish the campaign manifest; returns the config digest."""
    digest = config.digest()
    write_checksummed_json(
        os.path.join(root, MANIFEST_NAME),
        {"format": 1, "config": config.to_dict(), "config_digest": digest},
    )
    return digest


def load_manifest(root: str) -> CampaignConfig:
    """Read and verify the campaign manifest of an existing directory."""
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(path):
        raise FleetError(
            f"{root}: not a campaign directory (no {MANIFEST_NAME}); "
            f"start one with 'repro campaign run'"
        )
    body = read_checksummed_json(path)
    config = CampaignConfig.from_dict(body["config"])
    if body.get("config_digest") != config.digest():
        raise DurableError(f"{path}: manifest digest does not match its config")
    return config


def build_aggregate(
    config: CampaignConfig,
    grid: List[CellSpec],
    results: Dict[str, Dict[str, Any]],
    quarantined: List[str],
) -> Dict[str, Any]:
    """The canonical aggregate body: completed cells in grid order."""
    cells = [
        {"cell": results[cell.cell_id]["cell"], "result": results[cell.cell_id]["result"]}
        for cell in grid
        if cell.cell_id in results
    ]
    cells_failed = sorted(
        entry["cell"]["cell_id"] for entry in cells if not entry["result"]["ok"]
    )
    ok = (
        len(cells) == len(grid)
        and not quarantined
        and not cells_failed
    )
    return {
        "format": 1,
        "config": config.to_dict(),
        "config_digest": config.digest(),
        "n_cells": len(grid),
        "cells": cells,
        "quarantined": sorted(quarantined),
        "summary": {
            "completed": len(cells),
            "cells_ok": sum(1 for entry in cells if entry["result"]["ok"]),
            "cells_failed": cells_failed,
            "ok": ok,
        },
    }


def write_aggregate(root: str, body: Dict[str, Any]) -> str:
    """Publish the aggregate atomically; returns the sha256 of the file
    bytes (the byte-identity witness of the resume tests)."""
    data = json.dumps(body, sort_keys=True, indent=2).encode() + b"\n"
    atomic_write_bytes(os.path.join(root, AGGREGATE_NAME), data, dir_sync=False)
    return hashlib.sha256(data).hexdigest()


def load_aggregate(root: str) -> Dict[str, Any]:
    path = os.path.join(root, AGGREGATE_NAME)
    if not os.path.exists(path):
        raise FleetError(
            f"{root}: no {AGGREGATE_NAME} yet; run or resume the campaign first"
        )
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def run_fleet_campaign(
    root: str,
    config: Optional[CampaignConfig] = None,
    resume: bool = False,
    max_workers: Optional[int] = None,
    cell_timeout_s: float = 120.0,
    max_cell_attempts: int = 3,
    retry_backoff_s: float = 0.25,
    poll_s: float = 0.02,
    progress: Optional[Callable[[str], None]] = None,
    worker: Optional[Callable[..., None]] = None,
) -> FleetResult:
    """Run (or resume) a fleet campaign rooted at ``root``.

    Fresh run: pass ``config``; the manifest is written first, then the
    reference cache, then the cells.  Resume: pass ``resume=True`` (with
    or without ``config`` -- when given it must match the manifest);
    valid cell results on disk are kept, only missing cells execute.
    Either way the aggregate is (re)written at the end, and -- cells
    being deterministic -- its bytes do not depend on which invocation
    computed which cell.

    ``worker`` overrides the cell entry point (tests substitute hanging
    or crashing workers to exercise the reaper and quarantine paths).
    """
    root = os.path.abspath(root)
    manifest_exists = os.path.exists(os.path.join(root, MANIFEST_NAME))
    if manifest_exists:
        existing = load_manifest(root)
        if config is not None and config.digest() != existing.digest():
            raise FleetError(
                f"{root}: campaign manifest holds a different configuration; "
                f"resume without overriding it, or start a fresh directory"
            )
        config = existing
    else:
        if config is None:
            raise FleetError(
                f"{root}: no campaign to {'resume' if resume else 'run'} here "
                f"(missing {MANIFEST_NAME}) and no configuration given"
            )
        os.makedirs(root, exist_ok=True)
        write_manifest(root, config)

    digest = config.digest()
    grid = build_grid(config)
    os.makedirs(os.path.join(root, CELLS_DIR), exist_ok=True)
    started = time.monotonic()
    result = FleetResult(root=root, n_cells=len(grid))
    result.references_built = ensure_reference_cache(root, grid, progress)

    results: Dict[str, Dict[str, Any]] = {}
    pending: deque = deque()
    for cell in grid:
        body = _load_cell_result(root, cell, digest)
        if body is not None:
            results[cell.cell_id] = body
            result.reused += 1
        else:
            pending.append((cell, 0, 0.0))  # (cell, attempts so far, not-before)
    if progress:
        progress(
            f"campaign: {len(grid)} cells, {result.reused} already done, "
            f"{len(pending)} to run"
        )

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-forking platforms
        ctx = multiprocessing.get_context()
    if worker is None:
        worker = _cell_worker
    if max_workers is None:
        max_workers = max(1, min(8, os.cpu_count() or 2))
    settings = {"config_digest": digest, "deadline_us": config.deadline_us}

    running: Dict[str, tuple] = {}  # cell_id -> (proc, cell, attempts, deadline)
    quarantined: Dict[str, CellSpec] = {}
    while pending or running:
        now = time.monotonic()
        while pending and len(running) < max_workers:
            cell, attempts, not_before = pending[0]
            if not_before > now:
                break  # backoffs are uniform; head-of-line wait is fine
            pending.popleft()
            proc = ctx.Process(
                target=worker, args=(root, cell.describe(), settings)
            )
            proc.start()
            running[cell.cell_id] = (proc, cell, attempts, now + cell_timeout_s)

        finished: List[tuple] = []
        for cell_id, (proc, cell, attempts, deadline) in list(running.items()):
            if proc.is_alive():
                if time.monotonic() <= deadline:
                    continue
                _kill_worker(proc)  # hung worker: reap it
                reason = f"timed out after {cell_timeout_s:g}s"
            else:
                proc.join()
                reason = f"worker exited with code {proc.exitcode}"
            del running[cell_id]
            finished.append((cell, attempts, reason))

        for cell, attempts, reason in finished:
            body = _load_cell_result(root, cell, digest)
            if body is not None:
                results[cell.cell_id] = body
                result.executed += 1
                qpath = quarantine_path(root, cell.cell_id)
                if os.path.exists(qpath):
                    os.unlink(qpath)  # the cell recovered on a later pass
                if progress:
                    state = "ok" if body["result"]["ok"] else "FAIL"
                    progress(
                        f"cell {len(results)}/{len(grid)} {cell.cell_id}: {state}"
                    )
                continue
            # No valid result: the attempt failed (crash, hang, torn write).
            attempts += 1
            result.failed_attempts += 1
            if attempts >= max_cell_attempts:
                quarantined[cell.cell_id] = cell
                write_checksummed_json(
                    quarantine_path(root, cell.cell_id),
                    {
                        "cell": cell.describe(),
                        "attempts": attempts,
                        "last_error": reason,
                    },
                    dir_sync=False,
                )
                if progress:
                    progress(
                        f"cell {cell.cell_id}: QUARANTINED after "
                        f"{attempts} attempts ({reason})"
                    )
            else:
                backoff = retry_backoff_s * (2 ** (attempts - 1))
                pending.append((cell, attempts, time.monotonic() + backoff))
                if progress:
                    progress(
                        f"cell {cell.cell_id}: attempt {attempts} failed "
                        f"({reason}); retrying in {backoff:g}s"
                    )
        if pending or running:
            time.sleep(poll_s)

    result.quarantined = sorted(quarantined)
    aggregate = build_aggregate(config, grid, results, result.quarantined)
    result.cells_ok = aggregate["summary"]["cells_ok"]
    result.cells_failed = aggregate["summary"]["cells_failed"]
    result.aggregate_sha256 = write_aggregate(root, aggregate)
    result.aggregate_path = os.path.join(root, AGGREGATE_NAME)
    result.elapsed_s = time.monotonic() - started
    if progress:
        progress(
            f"aggregate: {result.aggregate_sha256[:16]}... "
            f"({result.cells_ok}/{result.n_cells} ok)"
        )
    return result
