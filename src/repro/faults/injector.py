"""Fault injection by context interposition.

The :class:`FaultInjector` installs itself as the ``faults`` hook of every
deployed component context -- the exact interposition point the
observation probe uses -- so fault campaigns, like observation, require
**no change to behaviour code**.  Transfer faults (drop / duplicate /
delay / corrupt / overflow) act on the sender's ``send`` path; receive
faults (crash-at-nth-receive, stall) act on the receiver's ``receive``
path; time-triggered crashes are armed by a kernel-level fault process at
exact virtual instants on the simulated runtimes.

Determinism: every probabilistic decision draws from a named stream of
the plan's :class:`~repro.sim.rng.RngRegistry`
(``fault.<kind>.<component>.<interface>``), so a campaign replays
bit-exactly for a given seed regardless of which other faults are added
later.

Only ``data``-kind messages are faulted.  Control traffic (end-of-stream)
and observation traffic are infrastructure: losing them would wedge the
application rather than degrade it, which is not the failure model under
study.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.core.context import DELIVER, DROP as VERDICT_DROP, DUPLICATE as VERDICT_DUPLICATE
from repro.core.errors import InjectedFault
from repro.core.messages import DATA
from repro.faults.plan import (
    CORRUPT,
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    OVERFLOW,
    PROCESS_KINDS,
    RECEIVE_KINDS,
    STALL,
    TRANSFER_KINDS,
)
from repro.sim.rng import RngRegistry


def _corrupt_value(value: Any, rng: np.random.Generator) -> Any:
    """Deterministically perturb one leaf of a payload; returns the
    corrupted value (copies arrays/bytes, never mutates the original)."""
    if isinstance(value, np.ndarray) and value.size:
        out = value.copy()
        flat = out.reshape(-1)
        idx = int(rng.integers(flat.size))
        if np.issubdtype(out.dtype, np.floating):
            flat[idx] = -flat[idx] - 1.0
        else:
            flat[idx] = flat[idx] ^ 0x55
        return out
    if isinstance(value, (bytes, bytearray)) and len(value):
        buf = bytearray(value)
        buf[int(rng.integers(len(buf)))] ^= 0x55
        return bytes(buf)
    if isinstance(value, dict) and value:
        keys = sorted(value, key=repr)
        key = keys[int(rng.integers(len(keys)))]
        return {**value, key: _corrupt_value(value[key], rng)}
    if isinstance(value, (list, tuple)) and value:
        idx = int(rng.integers(len(value)))
        items = list(value)
        items[idx] = _corrupt_value(items[idx], rng)
        return type(value)(items) if isinstance(value, tuple) else items
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value ^ 0x55
    if isinstance(value, float):
        return -value - 1.0
    return value  # uncorruptible leaf: delivered intact


class FaultInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to a deployed runtime."""

    def __init__(self, plan: FaultPlan, rng: Optional[RngRegistry] = None) -> None:
        self.plan = plan
        self.rng = rng or RngRegistry(plan.seed)
        #: Chronological record of every injected fault:
        #: ``{"t_ns", "component", "kind", "detail"}`` dicts.  Two runs of
        #: the same seeded campaign produce identical logs -- the
        #: reproducibility contract tests assert on.
        self.log: List[Dict[str, Any]] = []
        self._transfer_specs: Dict[tuple, List[tuple]] = {}  # (spec, rng stream) pairs
        self._receive_specs: Dict[str, List[FaultSpec]] = {}
        self._time_crashes: List[FaultSpec] = []
        self._armed: Dict[str, List[FaultSpec]] = {}
        self._recv_counts: Dict[str, int] = {}
        self._fired: set = set()  # one-shot specs already delivered
        self._probes: Dict[str, Any] = {}
        self._tracers: Dict[str, Any] = {}
        self._epoch_ns: Optional[int] = None  # native-runtime time origin
        self.installed = False
        plan.validate()  # cross-spec conflicts fail here, not mid-campaign
        for spec in plan.specs:
            if spec.kind in PROCESS_KINDS:
                # kill9 targets the hosting OS process, which no in-process
                # hook can survive to execute; the kill-9 supervisor runs
                # those (split them out with plan.split_process_faults).
                raise FaultPlanError(
                    f"{spec.kind} is a process-level fault; FaultInjector cannot "
                    f"inject it -- split it out with split_process_faults()"
                )
            if spec.kind in TRANSFER_KINDS:
                # Pair each spec with its rng stream up front: streams are
                # memoized by name in the registry, so this draws the same
                # sequence as a per-transfer lookup while keeping the hot
                # interposition path free of string formatting.
                stream = self.rng.stream(f"fault.{spec.kind}.{spec.component}.{spec.interface}")
                self._transfer_specs.setdefault((spec.component, spec.interface), []).append(
                    (spec, stream)
                )
            elif spec.kind == CRASH and spec.at_ns is not None:
                self._time_crashes.append(spec)
            else:  # crash-at-nth-receive, stall
                self._receive_specs.setdefault(spec.component, []).append(spec)

    # -- installation ---------------------------------------------------------

    def install(self, runtime) -> "FaultInjector":
        """Hook every deployed behaviour context (call after ``deploy()``
        -- and after ``enable_tracing`` if tracing is wanted -- but before
        ``start()``)."""
        if self.installed:
            raise RuntimeError("fault injector already installed")
        names = set(runtime.containers)
        for spec in self.plan.specs:
            if spec.component not in names:
                raise RuntimeError(
                    f"fault plan targets unknown component {spec.component!r}"
                )
        for cont in runtime.containers.values():
            base = cont.context
            while hasattr(base, "_delegate"):  # unwrap TracingContext et al.
                base = base._delegate
            base.faults = self
            self._probes[cont.component.name] = cont.probe
            tracer = cont.extra.get("tracer")
            if tracer is not None:
                self._tracers[cont.component.name] = tracer
        kernel = getattr(runtime, "kernel", None)
        if self._time_crashes:
            if kernel is not None:
                from repro.sim.process import Process

                Process(kernel, self._fault_clock(), name="fault.clock", daemon=True)
            else:
                # Native runtime: no virtual clock to ride; crashes arm
                # against elapsed wall time from installation.
                first = next(iter(runtime.containers.values()), None)
                if first is not None and first.context is not None:
                    self._epoch_ns = first.context.now_ns()
        self.installed = True
        return self

    def _fault_clock(self) -> Generator:
        """The kernel-level fault process: arms each time-triggered crash
        at its exact virtual instant (the crash fires at the victim's next
        middleware interaction, where the injected error can propagate)."""
        from repro.sim.process import Timeout

        now = 0
        for spec in sorted(self._time_crashes, key=lambda s: (s.at_ns, s.component)):
            if spec.at_ns > now:
                yield Timeout(spec.at_ns - now)
                now = spec.at_ns
            self._armed.setdefault(spec.component, []).append(spec)
            self._record(now, spec.component, "crash-armed", f"at_ns={spec.at_ns}")

    # -- bookkeeping ----------------------------------------------------------

    def _record(
        self, t_ns: int, component: str, kind: str, detail: str = "", span: int = 0
    ) -> None:
        entry = {"t_ns": int(t_ns), "component": component, "kind": kind, "detail": detail}
        if span:
            # The causal identity of the faulted message: a dropped or
            # duplicated span shows up here instead of silently vanishing
            # from (or double-counting in) the receive-edge stream.
            entry["span"] = int(span)
        self.log.append(entry)
        if not kind.endswith("-armed"):
            probe = self._probes.get(component)
            if probe is not None:
                probe.record_fault(kind)
        tracer = self._tracers.get(component)
        if tracer is not None:
            if span:
                tracer.emit("fault", kind, detail=detail, span=int(span))
            else:
                tracer.emit("fault", kind, detail=detail)

    def counts(self) -> Dict[str, int]:
        """Injected faults by kind (armed markers excluded)."""
        out: Dict[str, int] = {}
        for entry in self.log:
            kind = entry["kind"]
            if kind.endswith("-armed"):
                continue
            out[kind] = out.get(kind, 0) + 1
        return out

    # -- crash machinery -------------------------------------------------------

    def _check_armed_crash(self, ctx) -> None:
        name = ctx.name
        armed = self._armed.get(name)
        if not armed and self._epoch_ns is not None:
            # Native runtime: promote due time-crashes ourselves.
            elapsed = ctx.now_ns() - self._epoch_ns
            for spec in self._time_crashes:
                if spec.component == name and id(spec) not in self._fired and elapsed >= spec.at_ns:
                    self._fired.add(id(spec))
                    self._armed.setdefault(name, []).append(spec)
            armed = self._armed.get(name)
        if armed:
            spec = armed.pop(0)
            detail = f"at_ns={spec.at_ns}"
            self._record(ctx.now_ns(), name, CRASH, detail)
            raise InjectedFault(name, CRASH, detail)

    # -- context hooks (called from ComponentContext.send/receive) -------------

    def on_transfer(self, ctx, required_name: str, target, message) -> Generator:
        """Interpose on one outgoing transfer; returns the delivery verdict."""
        self._check_armed_crash(ctx)
        if message.kind != DATA:
            return DELIVER
        specs = self._transfer_specs.get((ctx.name, required_name))
        if not specs:
            return DELIVER
        verdict = DELIVER
        for spec, stream in specs:
            if spec.kind == DELAY:
                if stream.random() < spec.probability:
                    self._record(
                        ctx.now_ns(), ctx.name, DELAY,
                        f"{required_name} seq={message.seq} +{spec.delay_ns}ns",
                        span=message.span,
                    )
                    yield from ctx.sleep(spec.delay_ns)
            elif spec.kind == CORRUPT:
                if stream.random() < spec.probability:
                    message.payload = _corrupt_value(message.payload, stream)
                    self._record(
                        ctx.now_ns(), ctx.name, CORRUPT,
                        f"{required_name} seq={message.seq}", span=message.span,
                    )
            elif spec.kind == OVERFLOW:
                if ctx._depth_of(target) >= spec.capacity:
                    self._record(
                        ctx.now_ns(), ctx.name, OVERFLOW,
                        f"{required_name} seq={message.seq} capacity={spec.capacity}",
                        span=message.span,
                    )
                    verdict = VERDICT_DROP
            elif spec.kind == DROP:
                if stream.random() < spec.probability:
                    self._record(
                        ctx.now_ns(), ctx.name, DROP,
                        f"{required_name} seq={message.seq}", span=message.span,
                    )
                    verdict = VERDICT_DROP
            elif spec.kind == DUPLICATE:
                if verdict == DELIVER and stream.random() < spec.probability:
                    self._record(
                        ctx.now_ns(), ctx.name, DUPLICATE,
                        f"{required_name} seq={message.seq}", span=message.span,
                    )
                    verdict = VERDICT_DUPLICATE
        return verdict
        yield  # pragma: no cover - keeps this a generator on the no-spec path

    def before_receive(self, ctx, provided_name: str) -> Generator:
        """Interpose before blocking on a receive (crash trigger point)."""
        self._check_armed_crash(ctx)
        return
        yield  # pragma: no cover

    def after_receive(self, ctx, provided_name: str, message) -> Generator:
        """Interpose after a message was taken off the mailbox.

        Crash-at-nth-receive fires *here*: the nth data message has been
        consumed and is lost with the component state -- the harsher, more
        interesting recovery scenario.
        """
        if message.kind != DATA:
            return
        name = ctx.name
        count = self._recv_counts.get(name, 0) + 1
        self._recv_counts[name] = count
        specs = self._receive_specs.get(name)
        if not specs:
            return
        for spec in specs:
            if spec.on_receive != count or id(spec) in self._fired:
                continue
            self._fired.add(id(spec))
            if spec.kind == CRASH:
                detail = f"on_receive={count} ({provided_name} seq={message.seq} lost)"
                self._record(ctx.now_ns(), name, CRASH, detail, span=message.span)
                raise InjectedFault(name, CRASH, detail)
            if spec.kind == STALL:
                self._record(
                    ctx.now_ns(), name, STALL,
                    f"on_receive={count} +{spec.delay_ns}ns", span=message.span,
                )
                yield from ctx.sleep(spec.delay_ns)
