"""Decision support over fleet-campaign aggregates.

DAVOS-style campaign analytics: given the ``aggregate.json`` of a
:mod:`repro.faults.fleet` campaign, condense the per-cell results into
the numbers an operator actually chooses a supervision policy by:

* **per-policy metrics** -- frames saved, mean time to repair, restart
  overhead (supervisor backoff), contract violations, oracle pass rate,
  each aggregated over every cell the policy ran;
* the **Pareto frontier** of policies over the four decision axes
  (maximize frames saved; minimize MTTR, restart overhead and contract
  violations) -- a policy is *dominated* when another is at least as
  good on every axis and strictly better on one, so the frontier is the
  set of defensible choices and everything else has a named reason to
  be discarded;
* **per-fault-class sensitivity** -- how each policy's frame survival
  and violation counts move between light and heavy intensity, class by
  class, exposing which fault classes a policy is actually sensitive to.

Everything is computed from the aggregate alone (no re-simulation), and
rendered both as JSON (:func:`build_report`) and as paper-style text
tables (:func:`render_report`) for the ``repro campaign report`` CLI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.metrics.table import Table

#: The decision axes of the Pareto comparison, as ``(key, direction)``;
#: ``+1`` axes are maximized, ``-1`` minimized.
PARETO_AXES: Tuple[Tuple[str, int], ...] = (
    ("frames_saved_pct", +1),
    ("mttr_us_mean", -1),
    ("backoff_ms_total", -1),
    ("contract_violations", -1),
)


def _cells(aggregate: Dict[str, Any]) -> List[Dict[str, Any]]:
    return aggregate.get("cells", [])


def policy_metrics(aggregate: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Per-policy rollup over every completed cell, keyed by policy name.

    ``frames_saved_pct`` is total delivered over total expected (the
    fleet-wide survival rate under that policy); ``mttr_us_mean`` is the
    mean of per-cell MTTR over the cells that actually restarted (cells
    without restarts carry no repair-time information); restart overhead
    is the total supervisor backoff the policy spent, in milliseconds.
    """
    slots: Dict[str, Dict[str, Any]] = {}
    for entry in _cells(aggregate):
        policy = entry["cell"]["policy"]
        result = entry["result"]
        slot = slots.setdefault(
            policy,
            {
                "policy": policy,
                "cells": 0,
                "cells_ok": 0,
                "frames_expected": 0,
                "frames_delivered": 0,
                "restarts": 0,
                "backoff_total_ns": 0,
                "contract_violations": 0,
                "errors": 0,
                "_mttr_samples": [],
            },
        )
        slot["cells"] += 1
        slot["cells_ok"] += 1 if result["ok"] else 0
        slot["frames_expected"] += result["frames_expected"]
        slot["frames_delivered"] += result["frames_delivered"]
        slot["restarts"] += result["restarts"]
        slot["backoff_total_ns"] += result["backoff_total_ns"]
        slot["contract_violations"] += sum(result["contract_violations"].values())
        slot["errors"] += 1 if result["error"] else 0
        if result["restarts"]:
            slot["_mttr_samples"].append(result["mttr_us"])
    for slot in slots.values():
        samples = slot.pop("_mttr_samples")
        slot["mttr_us_mean"] = (
            round(sum(samples) / len(samples), 1) if samples else 0.0
        )
        expected = slot["frames_expected"]
        slot["frames_saved_pct"] = (
            round(100.0 * slot["frames_delivered"] / expected, 2) if expected else 0.0
        )
        slot["backoff_ms_total"] = round(slot["backoff_total_ns"] / 1e6, 3)
        slot["ok_rate_pct"] = (
            round(100.0 * slot["cells_ok"] / slot["cells"], 2) if slot["cells"] else 0.0
        )
    return dict(sorted(slots.items()))


def _dominates(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """True when policy point ``a`` Pareto-dominates ``b`` on the
    decision axes: at least as good everywhere, strictly better somewhere."""
    strictly_better = False
    for key, direction in PARETO_AXES:
        va, vb = a[key] * direction, b[key] * direction
        if va < vb:
            return False
        if va > vb:
            strictly_better = True
    return strictly_better


def pareto_frontier(
    metrics: Dict[str, Dict[str, Any]],
) -> Tuple[List[str], Dict[str, str]]:
    """Split policies into the frontier and the dominated set.

    Returns ``(frontier, dominated)``: the frontier as a sorted list of
    policy names, and for every dominated policy the name of one policy
    that dominates it (the *reason* it can be discarded).
    """
    dominated: Dict[str, str] = {}
    for name, point in metrics.items():
        for other_name, other in metrics.items():
            if other_name != name and _dominates(other, point):
                dominated[name] = other_name
                break
    frontier = sorted(name for name in metrics if name not in dominated)
    return frontier, dominated


def sensitivity(aggregate: Dict[str, Any]) -> Dict[str, List[Dict[str, Any]]]:
    """Per-fault-class sensitivity rows.

    For every fault class, one row per (policy, intensity) with the
    survival and violation numbers of exactly those cells -- reading a
    class's block top to bottom shows how each policy degrades as the
    class is turned up from light to heavy.
    """
    buckets: Dict[Tuple[str, str, str], Dict[str, Any]] = {}
    for entry in _cells(aggregate):
        cell, result = entry["cell"], entry["result"]
        key = (cell["fault_class"], cell["policy"], cell["intensity"])
        slot = buckets.setdefault(
            key,
            {
                "fault_class": key[0],
                "policy": key[1],
                "intensity": key[2],
                "cells": 0,
                "cells_ok": 0,
                "frames_expected": 0,
                "frames_delivered": 0,
                "restarts": 0,
                "contract_violations": 0,
            },
        )
        slot["cells"] += 1
        slot["cells_ok"] += 1 if result["ok"] else 0
        slot["frames_expected"] += result["frames_expected"]
        slot["frames_delivered"] += result["frames_delivered"]
        slot["restarts"] += result["restarts"]
        slot["contract_violations"] += sum(result["contract_violations"].values())
    out: Dict[str, List[Dict[str, Any]]] = {}
    for key in sorted(buckets):
        slot = buckets[key]
        expected = slot["frames_expected"]
        slot["frames_saved_pct"] = (
            round(100.0 * slot["frames_delivered"] / expected, 2) if expected else 0.0
        )
        out.setdefault(slot["fault_class"], []).append(slot)
    return out


def build_report(aggregate: Dict[str, Any]) -> Dict[str, Any]:
    """The full JSON decision report for one campaign aggregate."""
    metrics = policy_metrics(aggregate)
    frontier, dominated = pareto_frontier(metrics)
    summary = aggregate.get("summary", {})
    return {
        "config_digest": aggregate.get("config_digest", ""),
        "n_cells": aggregate.get("n_cells", 0),
        "completed": summary.get("completed", 0),
        "cells_ok": summary.get("cells_ok", 0),
        "cells_failed": summary.get("cells_failed", []),
        "quarantined": aggregate.get("quarantined", []),
        "ok": summary.get("ok", False),
        "policies": metrics,
        "pareto": {
            "axes": [
                {"key": key, "direction": "max" if d > 0 else "min"}
                for key, d in PARETO_AXES
            ],
            "frontier": frontier,
            "dominated": dominated,
        },
        "sensitivity": sensitivity(aggregate),
    }


def render_report(report: Dict[str, Any]) -> str:
    """Paper-style text rendering of :func:`build_report` output."""
    lines: List[str] = []
    lines.append(
        f"campaign {report['config_digest'][:12]}: "
        f"{report['completed']}/{report['n_cells']} cells completed, "
        f"{report['cells_ok']} ok"
        + (f", {len(report['quarantined'])} quarantined" if report["quarantined"] else "")
    )
    lines.append("")

    policies = Table(
        [
            "Policy",
            "Cells",
            "Ok %",
            "Frames %",
            "MTTR (us)",
            "Restarts",
            "Backoff (ms)",
            "Violations",
        ],
        title="Supervision policies (fleet-wide)",
    )
    for name, m in report["policies"].items():
        policies.add_row(
            [
                name,
                m["cells"],
                m["ok_rate_pct"],
                m["frames_saved_pct"],
                m["mttr_us_mean"],
                m["restarts"],
                m["backoff_ms_total"],
                m["contract_violations"],
            ]
        )
    lines.append(policies.render())
    lines.append("")

    pareto = report["pareto"]
    axes = ", ".join(
        f"{axis['key']} ({axis['direction']})" for axis in pareto["axes"]
    )
    lines.append(f"Pareto frontier over {axes}:")
    for name in pareto["frontier"]:
        lines.append(f"  * {name}")
    for name, by in sorted(pareto["dominated"].items()):
        lines.append(f"  - {name} (dominated by {by})")
    lines.append("")

    for fault_class, rows in report["sensitivity"].items():
        table = Table(
            ["Policy", "Intensity", "Cells", "Ok", "Frames %", "Restarts", "Violations"],
            title=f"Sensitivity: {fault_class}",
        )
        for row in rows:
            table.add_row(
                [
                    row["policy"],
                    row["intensity"],
                    row["cells"],
                    row["cells_ok"],
                    row["frames_saved_pct"],
                    row["restarts"],
                    row["contract_violations"],
                ]
            )
        lines.append(table.render())
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
