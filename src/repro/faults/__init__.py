"""Fault injection and component supervision (robustness subsystem).

See ``docs/robustness.md``.  Quick tour::

    from repro.faults import FaultPlan, FaultInjector, Supervisor, RestartPolicy

    plan = FaultPlan(seed=7).crash("IDCT_2", on_receive=12) \
                            .drop("IDCT_2", "idctReorder", probability=0.05)
    rt.deploy(app)
    FaultInjector(plan).install(rt)
    Supervisor(policy=RestartPolicy()).install(rt)
    rt.start(); rt.wait()
"""

from repro.faults.campaign import CampaignResult, build_campaign_plan, run_chaos_campaign
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CORRUPT,
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    KINDS,
    OVERFLOW,
    STALL,
)
from repro.faults.supervisor import (
    DegradePolicy,
    HaltPolicy,
    RestartPolicy,
    SupervisionEvent,
    Supervisor,
)

__all__ = [
    "CampaignResult",
    "CORRUPT",
    "CRASH",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "DegradePolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "HaltPolicy",
    "KINDS",
    "OVERFLOW",
    "RestartPolicy",
    "STALL",
    "SupervisionEvent",
    "Supervisor",
    "build_campaign_plan",
    "run_chaos_campaign",
]
