"""Fault injection and component supervision (robustness subsystem).

See ``docs/robustness.md``.  Quick tour::

    from repro.faults import FaultPlan, FaultInjector, Supervisor, RestartPolicy

    plan = FaultPlan(seed=7).crash("IDCT_2", on_receive=12) \
                            .drop("IDCT_2", "idctReorder", probability=0.05)
    rt.deploy(app)
    FaultInjector(plan).install(rt)
    Supervisor(policy=RestartPolicy()).install(rt)
    rt.start(); rt.wait()
"""

from repro.faults.campaign import CampaignResult, build_campaign_plan, run_chaos_campaign
from repro.faults.decision import build_report, pareto_frontier, render_report
from repro.faults.fleet import (
    CampaignConfig,
    CellSpec,
    FleetError,
    FleetResult,
    build_cell_plan,
    build_grid,
    load_aggregate,
    run_fleet_campaign,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CORRUPT,
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    KINDS,
    OVERFLOW,
    STALL,
)
from repro.faults.supervisor import (
    DegradePolicy,
    HaltPolicy,
    RestartPolicy,
    SupervisionEvent,
    Supervisor,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CellSpec",
    "CORRUPT",
    "CRASH",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "DegradePolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FleetError",
    "FleetResult",
    "HaltPolicy",
    "KINDS",
    "OVERFLOW",
    "RestartPolicy",
    "STALL",
    "SupervisionEvent",
    "Supervisor",
    "build_campaign_plan",
    "build_cell_plan",
    "build_grid",
    "build_report",
    "load_aggregate",
    "pareto_frontier",
    "render_report",
    "run_chaos_campaign",
    "run_fleet_campaign",
]
