"""Seeded chaos campaigns over the MJPEG SMP demo.

A campaign is two simulated runs of the same synthetic MJPEG stream on
the 16-core SMP model:

1. a **reference** run without faults, recording every decoded frame;
2. a **chaos** run with a seed-derived :class:`~repro.faults.plan.FaultPlan`
   (component crashes at deterministic receive counts, probabilistic
   message drops and duplicates on named connections), supervised with a
   restart policy, traced, and observed.

The contract checked by :func:`run_chaos_campaign` is the paper-style
robustness claim: despite crashes and message loss the application
*completes*, every frame that survives is **bit-identical** to the
reference run, and the recovery itself is visible through the ordinary
observation machinery (fault counters, restart counts, MTTR, trace
events) -- with zero changes to behaviour code.

Replaying the same seed reproduces the fault schedule, the recovery
timeline and the output digest bit-exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.core.contracts import InterfaceContract
from repro.core.observation import APPLICATION_LEVEL
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.supervisor import RESTART, RestartPolicy, Supervisor
from repro.metrics.telemetry import collect_telemetry, enable_telemetry
from repro.mjpeg.components import BATCHES_PER_IMAGE, build_smp_assembly, frames_digest
from repro.mjpeg.stream import generate_stream
from repro.recovery import RecoveryManager
from repro.runtime.simulated import SmpSimRuntime
from repro.sim.rng import RngRegistry
from repro.trace.tracer import enable_tracing

#: IDCT workers of the SMP assembly (crash victims, round-robin).
_IDCTS = ("IDCT_1", "IDCT_2", "IDCT_3")

#: Per-message delivery deadline (microseconds) attached to the decode
#: pipeline's inbound interfaces when the campaign runs with telemetry.
#: Chosen just above the fault-free latency envelope of the 8-image
#: stream (data-message max ~5.84 ms, seed-independent), so violations
#: are *fault-induced*: plain drops and crashes never add latency, but
#: exactly-once recovery replays carry their original send timestamp
#: through the restart backoff and land at 7.1-8.4 ms -- every campaign
#: seed trips the deadline under ``--recover``, a clean run never does.
DEADLINE_US = 6_500


def attach_campaign_contracts(app, deadline_us: int = DEADLINE_US) -> None:
    """Attach the campaign's QoS contracts to the decode pipeline.

    Every IDCT input gets a per-message delivery deadline; the Reorder
    input additionally requires per-sender ordering, which injected
    duplicates violate unless exactly-once recovery dedups them first --
    so ordering violations count the duplicates that *reached* the
    application.
    """
    deadline_ns = deadline_us * 1_000
    for name in _IDCTS:
        comp = app.components[name]
        for prov in comp.functional_provided():
            comp.set_contract(
                prov.name,
                InterfaceContract(deadline_ns=deadline_ns, name="idct-input"),
            )
    app.components["Reorder"].set_contract(
        "idctReorder",
        InterfaceContract(deadline_ns=deadline_ns, ordered=True, name="reorder-input"),
    )


@dataclass
class CampaignResult:
    """Everything a chaos campaign run produced."""

    seed: int
    n_images: int
    plan: List[Dict[str, Any]]
    schedule: List[Dict[str, Any]]  # the injector's chronological fault log
    supervision: List[Dict[str, Any]]
    injected: Dict[str, int]
    restarts: int
    mttr_us: int
    frames_expected: int
    frames_delivered: int
    lost_frames: List[int] = field(default_factory=list)
    bit_exact: bool = False
    digest: str = ""
    makespan_ns: int = 0
    fault_trace_events: int = 0
    recover: bool = False
    recovery: Dict[str, Any] = field(default_factory=dict)
    frames_digest: str = ""
    reference_frames_digest: str = ""
    #: Merged telemetry registry of the chaos run (None when disabled).
    metrics: Any = None
    #: Contract violations observed live, keyed ``kind`` -> count.
    contract_violations: Dict[str, int] = field(default_factory=dict)
    #: ``contract``-category trace events emitted by the checkers.
    contract_trace_events: int = 0
    #: Shard count the chaos run executed on (1 = single-kernel runtime).
    shards: int = 1
    #: ``repr`` of the application-level error when the run did not
    #: complete (halt-policy propagation, escalation past max attempts).
    #: Empty for clean completion.
    error: str = ""
    #: Oracle mode (see :meth:`ok`): ``progress`` (default), ``survivors``
    #: (tolerates zero delivered frames -- halt/degrade policies may
    #: legitimately lose everything), or ``exact`` (forced exactly-once).
    oracle: str = "progress"
    #: Total restart backoff the supervisor spent, in nanoseconds (one
    #: ingredient of the Pareto restart-overhead axis).
    backoff_total_ns: int = 0

    @property
    def ok(self) -> bool:
        """Campaign invariant.

        Without recovery: the run completed and every *surviving* frame is
        bit-exact (dropped frames are tolerated).  With recovery (or the
        ``exact`` oracle) the claim is exactly-once: the **complete** frame
        set must come out, and its digest must equal the fault-free
        reference digest bit for bit.  The ``survivors`` oracle -- used by
        fleet cells running halt/degrade policies, where losing the whole
        tail of the stream is the *expected* trade-off -- only requires
        that whatever survived is bit-exact.
        """
        if self.recover or self.oracle == "exact":
            return (
                self.bit_exact
                and not self.lost_frames
                and self.frames_delivered == self.frames_expected
                and self.frames_digest == self.reference_frames_digest
            )
        if self.oracle == "survivors":
            return self.bit_exact
        return self.bit_exact and self.frames_delivered > 0 and not self.error

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly condensed result (CLI / CI output)."""
        return {
            "seed": self.seed,
            "n_images": self.n_images,
            "injected": self.injected,
            "restarts": self.restarts,
            "mttr_us": self.mttr_us,
            "frames_expected": self.frames_expected,
            "frames_delivered": self.frames_delivered,
            "lost_frames": self.lost_frames,
            "bit_exact": self.bit_exact,
            "fault_trace_events": self.fault_trace_events,
            "digest": self.digest,
            "recover": self.recover,
            "recovery": self.recovery,
            "frames_digest": self.frames_digest,
            "reference_frames_digest": self.reference_frames_digest,
            "contract_violations": self.contract_violations,
            "contract_trace_events": self.contract_trace_events,
            "shards": self.shards,
            "error": self.error,
            "oracle": self.oracle,
            "backoff_total_ns": self.backoff_total_ns,
            "makespan_ns": self.makespan_ns,
            "ok": self.ok,
        }


def build_campaign_plan(
    seed: int,
    n_images: int,
    drop_rate: float = 0.05,
    crashes: int = 3,
    duplicate_rate: float = 0.05,
    kill9s: int = 0,
) -> FaultPlan:
    """Derive the deterministic fault plan for one campaign seed.

    Crashes hit the IDCT workers round-robin at receive counts drawn from
    the ``campaign.schedule`` stream; drops hit the ``IDCT_2 ->
    idctReorder`` connection (one lossy link, so most frames survive);
    duplicates hit ``IDCT_1 -> idctReorder`` (the reassembly stage must
    dedupe them).

    ``kill9s`` adds process-level SIGKILL faults (round-robin over the
    IDCT workers, triggered after distinct durable-frame counts drawn
    from the separate ``campaign.kill9`` stream, so existing seeds keep
    their exact in-process schedules).  These cannot be injected by
    :class:`~repro.faults.injector.FaultInjector` -- the kill-9
    supervisor of :mod:`repro.recovery.supervised` executes them.
    """
    if n_images < 3:
        raise ValueError(f"campaign needs at least 3 images, got {n_images}")
    per_idct = (n_images - 1) * BATCHES_PER_IMAGE // len(_IDCTS)
    if per_idct < 4:
        raise ValueError("stream too short for the crash schedule")
    rng = RngRegistry(seed).stream("campaign.schedule")
    plan = FaultPlan(seed)
    used = set()
    for k in range(crashes):
        component = _IDCTS[k % len(_IDCTS)]
        while True:
            on_receive = int(rng.integers(2, per_idct))
            if (component, on_receive) not in used:
                used.add((component, on_receive))
                break
        plan.crash(component, on_receive=on_receive)
    if drop_rate > 0:
        plan.drop("IDCT_2", "idctReorder", probability=drop_rate)
    if duplicate_rate > 0:
        plan.duplicate("IDCT_1", "idctReorder", probability=duplicate_rate)
    if kill9s:
        if kill9s >= n_images - 1:
            raise ValueError(
                f"at most {n_images - 2} kill9 faults fit a {n_images}-image stream"
            )
        kill_rng = RngRegistry(seed).stream("campaign.kill9")
        thresholds: set = set()
        while len(thresholds) < kill9s:
            thresholds.add(int(kill_rng.integers(1, n_images - 1)))
        for k, after in enumerate(sorted(thresholds)):
            plan.kill9(_IDCTS[k % len(_IDCTS)], after_frames=after)
    return plan


# The canonical frame-set digest lives with the decoder components; the
# campaign and the sharded-run CI gate must hash identically.
_frames_digest = frames_digest


def _run_reference(stream, shards: int = 1) -> Dict[int, np.ndarray]:
    """Fault-free run; returns the decoded frames by index.

    ``shards`` selects the platform variant (the sharded conservative
    simulation for ``shards > 1``); the decoded pixels are shard-count
    invariant, but fleet campaigns cache one reference per platform so
    the oracle never crosses runtimes.
    """
    app = build_smp_assembly(
        stream, use_stored_coefficients=True, keep_frames=True, with_observer=False
    )
    if shards > 1:
        from repro.runtime import ShardedSmpSimRuntime

        rt = ShardedSmpSimRuntime(shards)
    else:
        rt = SmpSimRuntime()
    rt.run(app)
    rt.stop()
    return dict(app.components["Reorder"].frames)


def frame_hashes(frames: Dict[int, np.ndarray]) -> Dict[int, str]:
    """Per-frame sha256 of the raw pixel bytes -- the cacheable form of
    the bit-exactness oracle.  Fleet campaigns persist these once per
    (platform, seed) instead of shipping reference pixels to every cell."""
    return {
        index: hashlib.sha256(image.tobytes()).hexdigest()
        for index, image in frames.items()
    }


def run_chaos_campaign(
    seed: int = 0,
    n_images: int = 10,
    drop_rate: float = 0.05,
    crashes: int = 3,
    max_attempts: int = 5,
    recover: bool = False,
    metrics: bool = True,
    deadline_us: int = DEADLINE_US,
    plan: FaultPlan = None,
    policy=None,
    shards: int = 1,
    oracle: str = "progress",
    capture_errors: bool = False,
    reference_hashes: Dict[int, str] = None,
    reference_digest: str = "",
    dynamic_upstream: bool = False,
    quiescence_timeout_ns: int = None,
) -> CampaignResult:
    """Run one seeded chaos campaign; see the module docstring.

    With ``recover=True`` a :class:`~repro.recovery.RecoveryManager` is
    installed alongside the supervisor, upgrading the claim from
    "survivors are bit-exact" to exactly-once: the complete frame set is
    reproduced bit-identically despite crashes, drops and duplicates.

    With ``metrics=True`` (the default) the chaos run carries the live
    telemetry plane: per-interface latency histograms, restart/MTTR
    series, and the QoS contracts of :func:`attach_campaign_contracts`
    checked message-by-message.  Deadline violations surface recovery
    replays that arrive past ``deadline_us``; ordering violations count
    injected duplicates that reached the application (zero under
    exactly-once recovery, which dedups them at admission).

    The remaining keywords are the fleet-cell hooks
    (:mod:`repro.faults.fleet` fans hundreds of these out across a worker
    pool): an explicit ``plan`` and supervision ``policy`` replace the
    built-in defaults, ``shards`` runs the chaos application on the
    conservative sharded simulation, ``oracle`` relaxes or tightens
    :attr:`CampaignResult.ok` per policy expectation, ``capture_errors``
    records an application failure in the result instead of raising
    (halt-policy cells *expect* to fail), and ``reference_hashes`` /
    ``reference_digest`` substitute a cached per-frame-sha256 reference
    for the in-process fault-free run.
    """
    if recover and shards > 1:
        raise ValueError(
            "recovery campaigns need the single-kernel runtime "
            "(fault replay is not supported in sharded simulation)"
        )
    stream = generate_stream(n_images, 96, 96, quality=75, seed=seed)
    if reference_hashes is None:
        reference = _run_reference(stream)
        reference_hashes = frame_hashes(reference)
        reference_digest = _frames_digest(reference)
    elif not reference_digest:
        raise ValueError("reference_hashes needs the matching reference_digest")

    if plan is None:
        plan = build_campaign_plan(seed, n_images, drop_rate=drop_rate, crashes=crashes)
    plan.validate()
    app = build_smp_assembly(
        stream,
        use_stored_coefficients=True,
        keep_frames=True,
        with_observer=True,
        drop_incomplete=True,
        dynamic_upstream=dynamic_upstream,
        quiescence_timeout_ns=quiescence_timeout_ns,
    )
    if metrics:
        attach_campaign_contracts(app, deadline_us)
    if shards > 1:
        from repro.runtime import ShardedSmpSimRuntime
        from repro.trace import enable_sharded_tracing, merge_buffers

        rt = ShardedSmpSimRuntime(shards)
        rt.deploy(app)
        shard_buffers = enable_sharded_tracing(rt)
        buffer = None
    else:
        rt = SmpSimRuntime()
        rt.deploy(app)
        buffer = enable_tracing(rt)
        shard_buffers = None
    if metrics:
        enable_telemetry(rt)  # after tracing: checkers emit trace events
    injector = FaultInjector(plan).install(rt)
    recovery = RecoveryManager().install(rt) if recover else None
    if policy is None:
        policy = RestartPolicy(max_attempts=max_attempts, base_backoff_ns=200_000)
    supervisor = Supervisor(policy=policy, seed=seed).install(rt)
    error = ""
    try:
        rt.start()
        rt.wait()
        reports = rt.collect()
    except Exception as exc:  # noqa: BLE001 - halt cells expect to fail
        if not capture_errors:
            rt.stop()
            raise
        error = repr(exc)
        reports = {}
    try:
        rt.stop()
    except Exception:  # noqa: BLE001 - teardown of a failed app may rethrow
        if not error:
            raise
    if shard_buffers is not None:
        buffer = merge_buffers(shard_buffers)

    delivered = dict(app.components["Reorder"].frames)
    lost = sorted(set(reference_hashes) - set(delivered))
    bit_exact = all(
        index in reference_hashes
        and hashlib.sha256(image.tobytes()).hexdigest() == reference_hashes[index]
        for index, image in delivered.items()
    )

    restarts = 0
    mttr_samples: List[int] = []
    if reports:
        for comp in app.functional_components():
            fault_report = reports[(comp.name, APPLICATION_LEVEL)]["faults"]
            restarts += fault_report["restarts"]
            if fault_report["restarts"]:
                mttr_samples.extend(
                    [fault_report["mttr_us"]] * fault_report["restarts"]
                )
    else:
        restarts = sum(1 for ev in supervisor.events if ev.action == RESTART)
    mttr_us = sum(mttr_samples) // len(mttr_samples) if mttr_samples else 0
    backoff_total_ns = sum(ev.backoff_ns for ev in supervisor.events)

    fault_events = [e for e in buffer.events() if e.category == "fault"]
    contract_events = [e for e in buffer.events() if e.category == "contract"]

    registry = None
    if metrics:
        try:
            registry = collect_telemetry(rt)
        except Exception:  # noqa: BLE001 - a halted run may have no registry
            registry = None
    violations: Dict[str, int] = {}
    if registry is not None:
        for kind, name, labels, inst in registry.instruments():
            if kind == "counter" and name == "contract_violations_total" and inst.value:
                key = labels["kind"]
                violations[key] = violations.get(key, 0) + inst.value

    digest = hashlib.sha256()
    digest.update(json.dumps(plan.describe(), sort_keys=True).encode())
    digest.update(json.dumps(injector.log, sort_keys=True).encode())
    for ev in supervisor.events:
        digest.update(repr(ev).encode())
    for index in sorted(delivered):
        digest.update(index.to_bytes(4, "little"))
        digest.update(delivered[index].tobytes())

    return CampaignResult(
        seed=seed,
        n_images=n_images,
        plan=plan.describe(),
        schedule=list(injector.log),
        supervision=[ev.__dict__ for ev in supervisor.events],
        injected=injector.counts(),
        restarts=restarts,
        mttr_us=mttr_us,
        frames_expected=len(reference_hashes),
        frames_delivered=len(delivered),
        lost_frames=lost,
        bit_exact=bit_exact,
        digest=digest.hexdigest(),
        makespan_ns=rt.makespan_ns or 0,
        fault_trace_events=len(fault_events),
        recover=recover,
        recovery=recovery.report() if recovery is not None else {},
        frames_digest=_frames_digest(delivered),
        reference_frames_digest=reference_digest,
        metrics=registry,
        contract_violations=violations,
        contract_trace_events=len(contract_events),
        shards=shards,
        error=error,
        oracle=oracle,
        backoff_total_ns=backoff_total_ns,
    )
