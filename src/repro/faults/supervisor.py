"""Component supervision: restart, degrade or halt on failure.

The :class:`Supervisor` wraps a covered component's behaviour generator in
a fault-handling *flow* (installed through
:meth:`repro.runtime.base.Runtime._behavior_body`, so it works identically
on the simulated and native runtimes).  When the behaviour raises --
an :class:`~repro.core.errors.InjectedFault`, a
:class:`~repro.core.errors.DeadlineError`, or any organic error -- the
component's policy decides what happens next:

``restart``
    Wait an exponentially growing, jittered backoff, then run a *fresh*
    behaviour generator.  After ``max_attempts`` consecutive failures the
    fault escalates as :class:`~repro.core.errors.EscalationError`.
``degrade``
    Mark the component ``DEGRADED``, disconnect the required interfaces
    feeding it (senders that re-evaluate their connections reroute; the
    rest of the application keeps running) and end the flow cleanly.
``halt``
    Re-raise: the failure propagates and fails the application -- the
    pre-supervision behaviour, made explicit.

Every decision is recorded as a :class:`SupervisionEvent`, surfaced
through the component's observation probe (restart count, MTTR samples)
and -- when tracing is enabled -- as ``fault``-category trace events, so
recovery is *observed* with the same machinery as ordinary execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.core.component import ComponentState
from repro.core.errors import EscalationError
from repro.sim.errors import ProcessKilled
from repro.sim.rng import RngRegistry

RESTART = "restart"
DEGRADE = "degrade"
HALT = "halt"
ESCALATE = "escalate"

#: Jitter modes of :class:`RestartPolicy`.  ``proportional`` perturbs the
#: exponential backoff by ``+/- jitter`` of its value -- good enough to
#: break exact ties, but co-faulted components still restart in a narrow
#: band and can re-collide on the contended resource that failed them.
#: ``full`` draws the whole backoff uniformly from ``[0, raw]`` (the
#: classic full-jitter scheme), spreading simultaneous restarts across
#: the entire window so retry storms cannot synchronize.
JITTER_PROPORTIONAL = "proportional"
JITTER_FULL = "full"
JITTER_MODES = (JITTER_PROPORTIONAL, JITTER_FULL)


@dataclass(frozen=True)
class SupervisionEvent:
    """One supervision decision, in failure-time order."""

    t_ns: int
    component: str
    action: str  # restart | degrade | halt | escalate
    attempt: int
    error: str
    backoff_ns: int = 0


class RestartPolicy:
    """Exponential backoff with deterministic jitter, then escalation."""

    action = RESTART

    def __init__(
        self,
        max_attempts: int = 3,
        base_backoff_ns: int = 1_000_000,
        factor: float = 2.0,
        max_backoff_ns: int = 1_000_000_000,
        jitter: float = 0.1,
        jitter_mode: str = JITTER_PROPORTIONAL,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_backoff_ns < 0 or max_backoff_ns < base_backoff_ns:
            raise ValueError("invalid backoff bounds")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if jitter_mode not in JITTER_MODES:
            raise ValueError(
                f"jitter_mode must be one of {JITTER_MODES}, got {jitter_mode!r}"
            )
        self.max_attempts = max_attempts
        self.base_backoff_ns = base_backoff_ns
        self.factor = factor
        self.max_backoff_ns = max_backoff_ns
        self.jitter = jitter
        self.jitter_mode = jitter_mode

    def backoff_ns(self, attempt: int, rng) -> int:
        """Backoff before restart ``attempt`` (1-based), jittered by
        ``rng`` (a per-component seeded stream, so co-faulted components
        draw *different* backoffs from identical policies and schedules
        stay reproducible).

        ``proportional`` mode perturbs the exponential value by
        ``+/- jitter``; ``full`` mode draws uniformly from ``[0, raw]``,
        desynchronizing simultaneous restarts across the whole window
        (see :data:`JITTER_MODES`).
        """
        raw = self.base_backoff_ns * (self.factor ** (attempt - 1))
        raw = min(raw, self.max_backoff_ns)
        if self.jitter_mode == JITTER_FULL:
            raw *= float(rng.random())
        elif self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(0, int(raw))


class DegradePolicy:
    """Give the component up but keep the application alive.

    With ``detach_outbound=True`` the degraded component's *required*
    (outbound) data interfaces are disconnected too, so downstream
    components that count their live upstreams dynamically (e.g. a
    reassembly stage waiting for one end-of-stream marker per upstream)
    stop expecting traffic from it instead of blocking forever.
    """

    action = DEGRADE

    def __init__(self, detach_outbound: bool = False) -> None:
        self.detach_outbound = detach_outbound


class HaltPolicy:
    """Fail fast: propagate the error (no supervision semantics)."""

    action = HALT


class Supervisor:
    """Per-component failure policies plus the recovery flow."""

    def __init__(self, policy=None, seed: int = 0) -> None:
        #: Policy for components without an explicit one; ``None`` leaves
        #: them uncovered (raw behaviour, pre-supervision semantics).
        self.default_policy = policy
        self.seed = seed
        self._policies: Dict[str, Any] = {}
        self._rng = RngRegistry(seed)
        self.events: List[SupervisionEvent] = []
        self.runtime = None

    # -- configuration ---------------------------------------------------------

    def set_policy(self, component_name: str, policy) -> "Supervisor":
        """Assign a policy to one component (fluent)."""
        self._policies[component_name] = policy
        return self

    def policy_for(self, component_name: str):
        """The effective policy of a component (explicit, else default)."""
        return self._policies.get(component_name, self.default_policy)

    def covers(self, component_name: str) -> bool:
        """True when failures of this component route through the flow."""
        return self.policy_for(component_name) is not None

    def install(self, runtime) -> "Supervisor":
        """Attach to a runtime (between ``deploy()`` and ``start()``)."""
        if runtime.supervisor is not None and runtime.supervisor is not self:
            raise RuntimeError("runtime already has a supervisor")
        runtime.supervisor = self
        self.runtime = runtime
        return self

    # -- reporting -------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Summary of supervision activity (JSON-friendly)."""
        per_component: Dict[str, Dict[str, int]] = {}
        for ev in self.events:
            slot = per_component.setdefault(ev.component, {})
            slot[ev.action] = slot.get(ev.action, 0) + 1
        return {
            "events": [ev.__dict__ for ev in self.events],
            "per_component": per_component,
            "restarts": sum(1 for ev in self.events if ev.action == RESTART),
            "escalations": sum(1 for ev in self.events if ev.action == ESCALATE),
        }

    # -- the recovery flow -----------------------------------------------------

    def _note(self, cont, event: SupervisionEvent) -> None:
        self.events.append(event)
        tracer = cont.extra.get("tracer")
        if tracer is not None:
            tracer.emit(
                "fault", event.action, attempt=event.attempt,
                error=event.error, backoff_ns=event.backoff_ns,
            )

    def flow(self, runtime, cont) -> Generator:
        """The supervised execution flow of one component (a generator
        the runtime spawns in place of the raw behaviour)."""
        comp, ctx, probe = cont.component, cont.context, cont.probe
        policy = self.policy_for(comp.name)
        rng = self._rng.stream(f"supervisor.backoff.{comp.name}")
        attempt = 0
        while True:
            try:
                result = yield from comp.behavior(ctx)
                return result
            except (ProcessKilled, GeneratorExit):
                raise  # external termination, not a component fault
            except Exception as error:  # noqa: BLE001 - policy decides
                failed_at = ctx.now_ns()
                comp.state = ComponentState.FAILED
                action = policy.action
                if action == HALT:
                    self._note(
                        cont,
                        SupervisionEvent(failed_at, comp.name, HALT, attempt, repr(error)),
                    )
                    raise
                if action == DEGRADE:
                    self._note(
                        cont,
                        SupervisionEvent(failed_at, comp.name, DEGRADE, attempt, repr(error)),
                    )
                    self._disconnect_inbound(comp)
                    if getattr(policy, "detach_outbound", False):
                        self._disconnect_outbound(comp)
                    comp.state = ComponentState.DEGRADED
                    return None
                # restart
                attempt += 1
                if attempt > policy.max_attempts:
                    self._note(
                        cont,
                        SupervisionEvent(failed_at, comp.name, ESCALATE, attempt - 1, repr(error)),
                    )
                    raise EscalationError(comp.name, attempt - 1, error) from error
                backoff = policy.backoff_ns(attempt, rng)
                self._note(
                    cont,
                    SupervisionEvent(
                        failed_at, comp.name, RESTART, attempt, repr(error), backoff
                    ),
                )
                if backoff:
                    yield from ctx.sleep(backoff)
                recovery = getattr(runtime, "recovery", None)
                if recovery is not None:
                    # Exactly-once resumption: restore the latest committed
                    # checkpoint and replay unacknowledged inbound messages
                    # before the behaviour respawns (see repro.recovery).
                    recovery.on_restart(cont)
                if probe is not None:
                    probe.record_restart(ctx.now_ns() - failed_at, now_ns=ctx.now_ns())
                comp.state = ComponentState.RUNNING
                # loop: a *fresh* behaviour generator (resuming from the
                # restored checkpoint when recovery is installed); mailbox
                # bindings and connections survive, in-flight messages are
                # preserved.

    @staticmethod
    def _disconnect_outbound(comp) -> None:
        """Detach the degraded component's outgoing data connections so
        dynamically-counting downstream receivers stop waiting for its
        end-of-stream (``DegradePolicy(detach_outbound=True)``)."""
        for req in comp.required.values():
            if getattr(req, "is_observation", False):
                continue
            if req.connected:
                req.disconnect()

    @staticmethod
    def _disconnect_inbound(comp) -> None:
        """Detach every data connection feeding the degraded component.
        Senders that re-evaluate their targets (e.g. Fetch's per-frame
        ``idct_targets``) reroute traffic away from it."""
        for prov in comp.provided.values():
            if prov.is_observation:
                continue
            for req in list(prov.connected_from):
                req.disconnect()
