"""Deterministic fault plans.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries
plus a seed.  Nothing here is random by itself: the plan carries the
*parameters* of the campaign (which component, which connection, which
probability, which instant) and the seed from which the injector derives
its named random streams -- so the same plan replayed against the same
application produces a bit-identical fault schedule.

Fault taxonomy (``kind``):

``crash``
    Raise :class:`~repro.core.errors.InjectedFault` inside the target
    component's execution flow -- either at a virtual-time instant
    (``at_ns``, armed by the kernel-level fault process on simulated
    runtimes) or at its ``on_receive``-th data receive (both runtimes).
``drop``
    A data message sent by ``component`` through required interface
    ``interface`` is silently lost in transport with ``probability``.
``duplicate``
    The message is delivered twice with ``probability``.
``delay``
    Delivery is preceded by an extra ``delay_ns`` of latency with
    ``probability`` (transient link congestion).
``corrupt``
    The payload is deterministically perturbed in transit with
    ``probability`` (bit-flip model for arrays/bytes).
``stall``
    The component freezes for ``delay_ns`` before its ``on_receive``-th
    data receive (transient compute stall; no state is lost).
``overflow``
    The receiving mailbox behaves as if bounded to ``capacity``
    entries: sends that find it full are refused and the message is
    lost (counted as an overflow fault).
``kill9``
    **Process-level**: SIGKILL the real OS process hosting the target
    component once ``after_frames`` decoded frames are durable on disk.
    Unlike every other kind this is not injectable in-process -- the
    victim gets no exception, no cleanup, no supervisor flow; only the
    durable store survives.  Executed by the kill-9 supervisor of
    :mod:`repro.recovery.supervised`; :class:`~repro.faults.injector.FaultInjector`
    rejects plans that still contain one (split them out first with
    :func:`split_process_faults`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

CRASH = "crash"
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
CORRUPT = "corrupt"
STALL = "stall"
OVERFLOW = "overflow"
KILL9 = "kill9"

KINDS = (CRASH, DROP, DUPLICATE, DELAY, CORRUPT, STALL, OVERFLOW, KILL9)

#: Kinds interposed on the sender's transfer path.
TRANSFER_KINDS = (DROP, DUPLICATE, DELAY, CORRUPT, OVERFLOW)
#: Kinds interposed on the receiver's receive path.
RECEIVE_KINDS = (CRASH, STALL)
#: Kinds executed against the hosting OS process, outside the runtime.
PROCESS_KINDS = (KILL9,)


class FaultPlanError(ValueError):
    """An ill-formed fault specification."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.  Field relevance depends on ``kind``."""

    kind: str
    component: str
    interface: str = ""
    at_ns: Optional[int] = None
    on_receive: Optional[int] = None
    probability: float = 1.0
    delay_ns: int = 0
    capacity: int = 0
    after_frames: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS} "
                f"(see repro.faults.plan for the taxonomy)"
            )
        if not self.component:
            raise FaultPlanError(f"{self.kind} fault needs a target component")
        if not 0.0 <= self.probability <= 1.0:  # also rejects NaN
            raise FaultPlanError(
                f"{self.kind} fault on {self.component!r}: probability (rate) must "
                f"be in [0, 1], got {self.probability}"
            )
        if self.delay_ns < 0:
            raise FaultPlanError(
                f"{self.kind} fault on {self.component!r}: negative delay_ns "
                f"(intensity) {self.delay_ns}; delays are forward virtual time"
            )
        if self.capacity < 0:
            raise FaultPlanError(
                f"{self.kind} fault on {self.component!r}: negative capacity "
                f"{self.capacity}"
            )
        if self.after_frames < 0:
            raise FaultPlanError(
                f"{self.kind} fault on {self.component!r}: negative after_frames "
                f"{self.after_frames}"
            )
        if self.kind == CRASH:
            if (self.at_ns is None) == (self.on_receive is None):
                raise FaultPlanError("crash needs exactly one of at_ns= or on_receive=")
            if self.at_ns is not None and self.at_ns < 0:
                raise FaultPlanError(f"negative crash instant: {self.at_ns}")
            if self.on_receive is not None and self.on_receive < 1:
                raise FaultPlanError(f"on_receive counts from 1, got {self.on_receive}")
        if self.kind in TRANSFER_KINDS and not self.interface:
            raise FaultPlanError(f"{self.kind} fault needs the sender's required interface")
        if self.kind in (DELAY, STALL) and self.delay_ns <= 0:
            raise FaultPlanError(f"{self.kind} fault needs a positive delay_ns")
        if self.kind == STALL and (self.on_receive is None or self.on_receive < 1):
            raise FaultPlanError("stall needs on_receive >= 1")
        if self.kind == OVERFLOW and self.capacity < 1:
            raise FaultPlanError(f"overflow needs capacity >= 1, got {self.capacity}")
        if self.kind == KILL9 and self.after_frames < 1:
            raise FaultPlanError(f"kill9 needs after_frames >= 1, got {self.after_frames}")

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly summary of this spec (campaign manifests)."""
        out: Dict[str, Any] = {"kind": self.kind, "component": self.component}
        if self.interface:
            out["interface"] = self.interface
        if self.at_ns is not None:
            out["at_ns"] = self.at_ns
        if self.on_receive is not None:
            out["on_receive"] = self.on_receive
        if self.kind in TRANSFER_KINDS:
            out["probability"] = self.probability
        if self.delay_ns:
            out["delay_ns"] = self.delay_ns
        if self.capacity:
            out["capacity"] = self.capacity
        if self.after_frames:
            out["after_frames"] = self.after_frames
        return out


@dataclass
class FaultPlan:
    """A seeded collection of fault specs, built fluently::

        plan = (FaultPlan(seed=7)
                .crash("IDCT_2", on_receive=12)
                .drop("IDCT_2", "idctReorder", probability=0.05)
                .stall("Fetch", on_receive=30, delay_ns=2_000_000))
    """

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append a prebuilt spec (fluent)."""
        self.specs.append(spec)
        return self

    def crash(
        self, component: str, at_ns: Optional[int] = None, on_receive: Optional[int] = None
    ) -> "FaultPlan":
        """Crash ``component`` at a virtual instant or at its nth receive."""
        return self.add(FaultSpec(CRASH, component, at_ns=at_ns, on_receive=on_receive))

    def drop(self, component: str, interface: str, probability: float) -> "FaultPlan":
        """Lose messages sent by ``component`` via ``interface``."""
        return self.add(FaultSpec(DROP, component, interface, probability=probability))

    def duplicate(self, component: str, interface: str, probability: float) -> "FaultPlan":
        """Deliver messages on this connection twice."""
        return self.add(FaultSpec(DUPLICATE, component, interface, probability=probability))

    def delay(
        self, component: str, interface: str, probability: float, delay_ns: int
    ) -> "FaultPlan":
        """Add transit latency on this connection."""
        return self.add(
            FaultSpec(DELAY, component, interface, probability=probability, delay_ns=delay_ns)
        )

    def corrupt(self, component: str, interface: str, probability: float) -> "FaultPlan":
        """Perturb payloads in transit on this connection."""
        return self.add(FaultSpec(CORRUPT, component, interface, probability=probability))

    def stall(self, component: str, on_receive: int, delay_ns: int) -> "FaultPlan":
        """Freeze ``component`` before its nth data receive."""
        return self.add(FaultSpec(STALL, component, on_receive=on_receive, delay_ns=delay_ns))

    def overflow(self, component: str, interface: str, capacity: int) -> "FaultPlan":
        """Bound the mailbox behind this connection; overflowing sends are lost."""
        return self.add(FaultSpec(OVERFLOW, component, interface, capacity=capacity))

    def kill9(self, component: str, after_frames: int) -> "FaultPlan":
        """SIGKILL the OS process hosting ``component`` once ``after_frames``
        decoded frames are durable on disk (process-level; see module doc)."""
        return self.add(FaultSpec(KILL9, component, after_frames=after_frames))

    def process_faults(self) -> List[FaultSpec]:
        """The process-level specs (executed outside the runtime)."""
        return [s for s in self.specs if s.kind in PROCESS_KINDS]

    def validate(self) -> "FaultPlan":
        """Cross-spec validation, run eagerly (fleet campaigns call this at
        grid-build time so an ill-formed plan fails before any cell runs).

        Per-spec field errors are already raised at construction by
        :class:`FaultSpec`; this catches the conflicts only visible across
        specs:

        * **overlapping stall windows** -- two stalls on the same component
          triggering at the same receive index would stack into one opaque
          freeze; split them across distinct receives instead;
        * **duplicate crash triggers** -- two crashes on the same component
          at the same instant / receive: the second can never fire;
        * **duplicate kill9 thresholds** -- two SIGKILLs of the same
          component at the same durable-frame count.
        """
        stalls: set = set()
        crashes: set = set()
        kills: set = set()
        for spec in self.specs:
            if spec.kind == STALL:
                key = (spec.component, spec.on_receive)
                if key in stalls:
                    raise FaultPlanError(
                        f"overlapping stall windows on {spec.component!r}: two "
                        f"stalls trigger at receive #{spec.on_receive}; merge "
                        f"them into one longer delay_ns or move one to a "
                        f"different on_receive"
                    )
                stalls.add(key)
            elif spec.kind == CRASH:
                key = (spec.component, spec.at_ns, spec.on_receive)
                if key in crashes:
                    trigger = (
                        f"at_ns={spec.at_ns}" if spec.at_ns is not None
                        else f"on_receive={spec.on_receive}"
                    )
                    raise FaultPlanError(
                        f"duplicate crash trigger on {spec.component!r} "
                        f"({trigger}): the component is already down when the "
                        f"second crash would fire"
                    )
                crashes.add(key)
            elif spec.kind == KILL9:
                key = (spec.component, spec.after_frames)
                if key in kills:
                    raise FaultPlanError(
                        f"duplicate kill9 threshold on {spec.component!r} "
                        f"(after_frames={spec.after_frames})"
                    )
                kills.add(key)
        return self

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-friendly plan manifest (stable order)."""
        return [spec.describe() for spec in self.specs]

    def __len__(self) -> int:
        return len(self.specs)


def split_process_faults(plan: FaultPlan) -> "tuple[FaultPlan, List[FaultSpec]]":
    """Split ``plan`` into an in-process plan (safe to hand to
    :class:`~repro.faults.injector.FaultInjector`) and the process-level
    specs the supervising parent executes itself."""
    inproc = FaultPlan(plan.seed, [s for s in plan.specs if s.kind not in PROCESS_KINDS])
    return inproc, plan.process_faults()
