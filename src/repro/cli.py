"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the built-in platform inventory (cores, memory, cost anchors).
``demo-smp [N]``
    Run the componentized MJPEG decoder on the simulated 16-core SMP and
    print Table-1/2-style observations (default 20 images).
``demo-sti7200 [N]``
    Same on the simulated STi7200 (Table-3 style).
``observe``
    Run the quickstart pipeline on the native runtime and dump all three
    observation levels as JSON.
``bench [--quick] [--workers N] [--check]``
    Run the perf-trajectory microbenchmarks and write
    ``BENCH_kernel.json`` / ``BENCH_mjpeg.json`` in the current
    directory (see ``docs/performance.md``).  ``--workers N`` shards
    the per-frame decode benches across a process pool; ``--check``
    re-runs the kernel hot paths and fails on a >25% regression versus
    the committed ``BENCH_kernel.json`` instead of writing artifacts.
``run [--workload {mjpeg,traffic}] [--images N] [--components N]
[--shards N] [--parallel] [--metrics OUT] [--record-profile OUT.json]
[--repartition PROFILE.json] [--profile OUT.pstats]``
    Run a workload and print its shard-count-invariant digest.  The
    default ``mjpeg`` workload decodes the MJPEG stream and prints the
    sha256 of the decoded frame set; ``--shards N`` partitions the
    simulation across N conservative shards (``repro.sim.shard``); the
    digest is identical for every shard count -- the CI ``shard-smoke``
    job diffs them.  ``--metrics OUT`` additionally runs the live
    telemetry plane and writes the merged registry (the ``metrics
    sha256:`` line is likewise shard-count invariant -- the CI
    ``metrics-smoke`` job diffs it).  ``--workload traffic`` runs the
    generated fan-in/fan-out service graph (``--components`` wide, 10k+
    supported) instead; its invariant line is ``trace sha256:`` -- the
    CI ``scale-smoke`` job diffs it across shard counts.  Both workloads
    can dump observed traffic (``--record-profile``) and re-partition
    from a recorded profile (``--repartition``) -- the measure ->
    repartition -> rerun loop.  ``--profile OUT.pstats`` wraps the run
    in cProfile.
``top [--images N] [--shards N] [--watch]``
    Live ascii telemetry dashboard over the MJPEG SMP decode:
    per-component send/receive/latency/busy/restart table plus the
    windowed message-rate and latency chart; ``--watch`` replays the
    telemetry windows as redrawn terminal frames.
``faults [--seed S] [--images N] [--drop-rate P] [--crashes K] [--recover]
[--durable DIR] [--kill9 K] [--metrics OUT]``
    Run a seeded chaos campaign over the MJPEG SMP demo (crashes,
    drops, duplicates under supervision) and print the recovery
    report; exits 1 unless every surviving frame is bit-exact (see
    ``docs/robustness.md``).  The campaign carries the live telemetry
    plane with QoS contracts on the decode pipeline: plain campaigns
    trip the *ordering* contract (injected duplicates reach the app),
    ``--recover`` campaigns trip the *deadline* contract (replays
    arrive late) and dedup the duplicates.  ``--metrics OUT`` writes
    the campaign registry.  With ``--recover --durable DIR`` the
    campaign runs in a supervised child OS process whose recovery
    state lives on disk in ``DIR``, and ``--kill9 K`` schedules K real
    SIGKILLs of that process mid-decode; the oracle is unchanged (the
    complete frame set, sha256-identical to the fault-free reference).
``recover {ls,dump,verify} DIR``
    Inspect a durable recovery directory: ``ls`` summarizes the
    manifest, checkpoints, WAL and frames; ``dump`` prints the WAL
    records; ``verify`` checks the whole binding (manifest <->
    checkpoint epochs <-> WAL scan) and exits 1 on inconsistency.
``trace [--images N] [--shards N] [--out PREFIX]``
    Run the MJPEG SMP demo with causal tracing, print the critical
    path and the per-hop latency table, and write the columnar trace
    plus a Chrome/Perfetto trace with causal flow arrows (see
    ``docs/observing.md``).  ``--shards N`` traces a sharded run into
    per-shard buffers and merges them before analysis.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro import __version__


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.hw import make_smp16, make_sti7200
    from repro.metrics import Table

    for platform in (make_smp16(), make_sti7200()):
        table = Table(
            ["core", "freq (MHz)", "node", "idct_block (us)", "memcpy 1kB (us)"],
            title=f"platform {platform.name}: {platform.n_cores} cores, "
            f"{platform.total_memory_bytes() / 1024**3:.0f} GiB",
        )
        for i, core in enumerate(platform.cores):
            table.add_row(
                [
                    core.name,
                    round(core.freq_hz / 1e6),
                    platform.node_of_core(i),
                    round(core.cost_ns("idct_block", 1) / 1e3, 1),
                    round(core.cost_ns("memcpy_byte", 1024) / 1e3, 2),
                ]
            )
        print(table.render())
        print()
    return 0


def _demo(platform: str, n_images: int) -> int:
    from repro.core import APPLICATION_LEVEL, OS_LEVEL
    from repro.metrics import Table
    from repro.metrics.analysis import summarize
    from repro.mjpeg import generate_stream
    from repro.mjpeg.components import build_smp_assembly, build_sti7200_assembly
    from repro.runtime import SmpSimRuntime, Sti7200SimRuntime

    stream = generate_stream(n_images, 96, 96, quality=75, seed=0)
    if platform == "smp":
        app = build_smp_assembly(stream, use_stored_coefficients=True)
        rt = SmpSimRuntime()
    else:
        app = build_sti7200_assembly(stream, use_stored_coefficients=True)
        rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()

    table = Table(["Component", "exec time (us)", "Mem (kB)", "sends", "receives"])
    for comp in app.functional_components():
        os_r = reports[(comp.name, OS_LEVEL)]
        ap_r = reports[(comp.name, APPLICATION_LEVEL)]
        table.add_row(
            [comp.name, os_r["exec_time_us"], os_r["memory_kb"], ap_r["sends"], ap_r["receives"]]
        )
    print(table.render())
    s = summarize(reports, makespan_ns=rt.makespan_ns)
    print(
        f"\nmakespan {rt.makespan_ns / 1e9:.3f} simulated s; "
        f"bottleneck {s['bottleneck']} (imbalance {s['imbalance']:.2f}); "
        f"messages conserved: {s['messages_conserved']}"
    )
    return 0


def _cmd_observe(_args: argparse.Namespace) -> int:
    from repro.core import Application, CONTROL, InterfaceContract
    from repro.metrics import enable_telemetry
    from repro.runtime import NativeRuntime

    def producer(ctx):
        """Demo producer behaviour."""
        for _ in range(50):
            yield from ctx.send("out", bytes(2048))
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def consumer(ctx):
        """Demo consumer behaviour."""
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return

    app = Application("observe")
    app.create("producer", behavior=producer, requires=["out"])
    app.create("consumer", behavior=consumer, provides=["in"])
    app.connect("producer", "out", "consumer", "in")
    # A QoS contract on the consumer input: checked live by the telemetry
    # plane, reported through the observer (see the command's --help for
    # the JSON schema).
    app.components["consumer"].set_contract(
        "in", InterfaceContract(deadline_ns=1_000_000_000, ordered=True, name="demo-qos")
    )
    app.attach_observer()
    rt = NativeRuntime()
    rt.deploy(app)
    enable_telemetry(rt)
    rt.start()
    rt.wait()
    reports = rt.collect()
    rt.stop()
    printable = {f"{comp}/{level}": data for (comp, level), data in reports.items()}
    printable["contract_violations"] = app.observer.contract_violations()
    print(json.dumps(printable, indent=2, default=str))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.check:
        # Regression gate: compare against the committed artifact
        # instead of overwriting it.
        from repro.bench import check_regressions

        return 0 if check_regressions(quick=args.quick) else 1

    from repro.bench import run_benches

    paths = run_benches(quick=args.quick, workers=args.workers)
    for path in paths:
        with open(path) as fh:
            payload = json.load(fh)
        line = f"wrote {path}"
        if "entropy_decode_speedup" in payload:
            line += f"  (entropy decode speedup {payload['entropy_decode_speedup']:.2f}x)"
        print(line)
    return 0


def _load_profile(path: str) -> dict:
    """Load and sanity-check a ``repro.profile/v1`` document."""
    from repro.sim.shard import PROFILE_SCHEMA

    with open(path) as fh:
        profile = json.load(fh)
    if profile.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"{path}: schema {profile.get('schema')!r} is not {PROFILE_SCHEMA!r}"
        )
    return profile


def _write_profile(path: str, payload: dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path} ({len(payload['components'])} components, "
          f"{len(payload['edges'])} edges)")


def _cmd_run_traffic(args: argparse.Namespace) -> int:
    """The 10k-component traffic model on the raw shard layer.

    Prints the per-shard event balance and a shard-count-invariant
    ``trace sha256:`` line (the CI ``scale-smoke`` contract).  With
    ``--record-profile`` the observed traffic is dumped as a
    ``repro.profile/v1`` document; feeding that back via
    ``--repartition`` re-partitions by observed load -- the measure ->
    repartition -> rerun loop on a skewed workload.
    """
    from repro.sim.shard import repartition_from_profile
    from repro.workloads import TrafficConfig, run_traffic, traffic_profile_payload
    from repro.workloads.traffic import build_traffic_graph

    config = TrafficConfig(n_components=args.components, ticks=args.ticks)
    graph = build_traffic_graph(config)
    partition = None
    if args.repartition is not None:
        try:
            profile = _load_profile(args.repartition)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        partition = repartition_from_profile(
            graph["names"], graph["edges"], args.shards, profile
        )
        print(f"repartitioned {len(graph['names'])} components from "
              f"{args.repartition}")
    result = run_traffic(
        config, args.shards, parallel=args.parallel, partition=partition, graph=graph
    )
    mean = result["events"] / args.shards
    for k in range(args.shards):
        n = result["shard_events"][k]
        print(f"shard {k}: {n} events ({n / mean:.2f}x mean), "
              f"busy {result['shard_busy_s'][k] * 1e3:.1f} ms")
    print(f"sweeps: {result['sweeps']}  batch factor: "
          f"{result['batch_factor']:.1f} (released/callback)")
    print(
        f"shards={args.shards} components={result['components']} "
        f"sessions={result['sessions']} requests={result['requests']} "
        f"events={result['events']} "
        f"({result['events'] / result['wall_s']:,.0f} events/s wall) "
        f"makespan={result['makespan_ns'] / 1e6:.3f} simulated ms"
    )
    print(f"trace sha256: {result['digest']}")
    if args.record_profile is not None:
        _write_profile(args.record_profile, traffic_profile_payload(result))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    """MJPEG SMP decode with a stable frame-set digest on stdout.

    ``--shards 1`` (the default) runs the plain single-kernel
    ``SmpSimRuntime``; ``--shards N`` for N > 1 runs the same assembly on
    the sharded conservative simulation.  The final ``frames sha256:``
    line is the CI contract: it must be identical for every shard count.

    With ``--metrics OUT`` the run carries the live telemetry plane and
    writes the merged registry to OUT (Prometheus text for ``.prom`` /
    ``.txt``, JSON otherwise).  Components are pinned to cores in
    deployment order and every shard count runs the sharded simulation,
    so the ``metrics sha256:`` line is a second shard-count-invariant
    CI contract: the whole telemetry stream (histogram buckets, window
    series) is bit-identical for any ``--shards N``.

    ``--workload traffic`` swaps the decode for the generated
    fan-in/fan-out service graph (``repro.workloads.traffic``, sized by
    ``--components``); its invariant line is ``trace sha256:``.  Both
    workloads support ``--record-profile OUT.json`` (dump observed
    traffic) and ``--repartition PROFILE.json`` (partition by a recorded
    profile instead of the static heuristic).
    """
    from repro.mjpeg import generate_stream
    from repro.mjpeg.components import build_smp_assembly, frames_digest
    from repro.runtime import ShardedSmpSimRuntime, SmpSimRuntime

    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.workload == "traffic":
        return _cmd_run_traffic(args)
    profile = None
    if args.repartition is not None:
        try:
            profile = _load_profile(args.repartition)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    # The profile plane lives on the sharded runtime's staged transport;
    # a 1-shard sharded run is output-identical to the plain runtime, so
    # profile I/O at --shards 1 just switches runtimes.
    needs_sharded_rt = profile is not None or args.record_profile is not None
    stream = generate_stream(args.images, 96, 96, quality=75, seed=0)
    app = build_smp_assembly(stream, use_stored_coefficients=True, keep_frames=True)
    if args.metrics is not None:
        from repro.metrics import collect_telemetry, enable_telemetry

        # Pin the placement so the shard partitioner cannot move
        # components between runs: shard-merge invariance of the metrics
        # stream is only meaningful over one fixed placement.
        for i, comp in enumerate(app.components.values()):
            comp.placement.setdefault("core", i)
        rt = ShardedSmpSimRuntime(args.shards, parallel=args.parallel, profile=profile)
        rt.deploy(app)
        enable_telemetry(rt)
        rt.start()
        rt.wait()
    elif args.shards == 1 and not needs_sharded_rt:
        rt = SmpSimRuntime()
        rt.run(app)
    else:
        rt = ShardedSmpSimRuntime(args.shards, parallel=args.parallel, profile=profile)
        rt.run(app)
    reports = rt.collect()
    rt.stop()

    frames = app.components["Reorder"].frames
    if args.shards > 1:
        assignment = {
            name: cont.extra["shard"] for name, cont in rt.containers.items()
        }
        by_shard: dict = {}
        for name, shard in sorted(assignment.items(), key=lambda kv: (kv[1], kv[0])):
            by_shard.setdefault(shard, []).append(name)
        for shard, names in by_shard.items():
            print(f"shard {shard}: {', '.join(names)}")
        print(f"sweeps: {rt.sim.sweeps}")
    print(
        f"shards={args.shards} images={args.images} frames={len(frames)} "
        f"reports={len(reports)} makespan={rt.makespan_ns / 1e6:.3f} simulated ms"
    )
    print(f"frames sha256: {frames_digest(frames)}")
    if args.record_profile is not None:
        _write_profile(args.record_profile, rt.profile())
    if args.metrics is not None:
        from repro.metrics import metrics_digest, write_metrics

        registry = collect_telemetry(rt)
        write_metrics(
            args.metrics, registry,
            meta={"command": "run", "images": args.images, "shards": args.shards},
        )
        n_instruments = len(registry.instruments())
        print(f"wrote {args.metrics} ({n_instruments} instruments, "
              f"{len(registry.windows)} windows)")
        print(f"metrics sha256: {metrics_digest(registry)}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.durable is not None:
        return _cmd_faults_durable(args)
    if args.kill9 is not None:
        print("--kill9 requires --recover --durable DIR (it kills a real process)",
              file=sys.stderr)
        return 2
    from repro.faults import run_chaos_campaign

    result = run_chaos_campaign(
        seed=args.seed,
        n_images=args.images,
        drop_rate=args.drop_rate,
        crashes=args.crashes,
        recover=args.recover,
    )
    print(json.dumps(result.summary(), indent=2))
    for event in result.supervision:
        print(
            f"  t={event['t_ns'] / 1e6:10.3f}ms {event['component']:<8} "
            f"{event['action']:<8} attempt={event['attempt']} {event['error']}"
        )
    if result.metrics is not None:
        violations = ", ".join(
            f"{kind}={n}" for kind, n in sorted(result.contract_violations.items())
        )
        print(f"contract violations: {violations or 'none'} "
              f"({result.contract_trace_events} trace event(s))")
        if args.metrics is not None:
            from repro.metrics import metrics_digest, write_metrics

            write_metrics(
                args.metrics, result.metrics,
                meta={"command": "faults", "seed": args.seed,
                      "images": args.images, "recover": args.recover},
            )
            print(f"wrote {args.metrics}")
            print(f"metrics sha256: {metrics_digest(result.metrics)}")
    if not result.ok:
        if args.recover:
            print(
                "FAIL: recovery campaign lost frames or diverged from the "
                f"fault-free reference (lost={result.lost_frames})",
                file=sys.stderr,
            )
        else:
            print("FAIL: campaign did not deliver bit-exact surviving frames", file=sys.stderr)
        return 1
    line = (
        f"ok: {result.frames_delivered}/{result.frames_expected} frames bit-exact "
        f"after {result.restarts} restart(s), MTTR {result.mttr_us} us"
    )
    if args.recover:
        rec = result.recovery
        line += (
            f" | exactly-once: replayed={rec.get('replayed', 0)}"
            f" deduped={rec.get('deduped', 0)}"
            f" checkpoints={rec.get('checkpoints', 0)}"
        )
    print(line)
    return 0


def _cmd_faults_durable(args: argparse.Namespace) -> int:
    """The supervised kill-9 variant of the chaos campaign."""
    from repro.recovery.supervised import run_durable_campaign

    if not args.recover:
        print("--durable requires --recover (durability layers under the "
              "recovery manager)", file=sys.stderr)
        return 2
    result = run_durable_campaign(
        seed=args.seed,
        n_images=args.images,
        durable_dir=args.durable,
        drop_rate=args.drop_rate,
        crashes=args.crashes,
        kill9s=1 if args.kill9 is None else args.kill9,
    )
    print(json.dumps(result.summary(), indent=2))
    if not result.ok:
        print(
            "FAIL: durable campaign lost frames or diverged from the "
            f"fault-free reference ({result.frames_delivered}/"
            f"{result.frames_expected} frames)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: {result.frames_delivered}/{result.frames_expected} frames "
        f"bit-exact after {result.kills} SIGKILL(s) and {result.spawns} "
        f"spawn(s) of the component process"
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Fleet campaigns: run / resume / report / ls (see repro.faults.fleet)."""
    from repro.faults.decision import build_report, render_report
    from repro.faults.fleet import (
        CampaignConfig,
        FleetError,
        build_grid,
        cell_result_path,
        load_aggregate,
        load_manifest,
        quarantine_path,
        run_fleet_campaign,
    )
    from repro.recovery.durable import DurableError

    def _split(raw: str, cast=str) -> tuple:
        return tuple(cast(part) for part in raw.split(",") if part)

    try:
        if args.action in ("run", "resume"):
            config = None
            if args.action == "run":
                config = CampaignConfig(
                    seeds=_split(args.seeds, int),
                    fault_classes=_split(args.classes),
                    intensities=_split(args.intensities),
                    policies=_split(args.policies),
                    shard_counts=_split(args.shards, int),
                    n_images=args.images,
                )
            result = run_fleet_campaign(
                args.dir,
                config=config,
                resume=args.action == "resume",
                max_workers=args.workers,
                cell_timeout_s=args.cell_timeout,
                max_cell_attempts=args.max_attempts,
                progress=None if args.json else print,
            )
            print(json.dumps(result.summary(), indent=2) if args.json else (
                f"{'ok' if result.ok else 'FAIL'}: {result.cells_ok}/"
                f"{result.n_cells} cells ok ({result.reused} reused, "
                f"{result.executed} executed, "
                f"{len(result.quarantined)} quarantined) in "
                f"{result.elapsed_s:.1f}s\n"
                f"aggregate sha256: {result.aggregate_sha256}"
            ))
            return 0 if result.ok else 1

        if args.action == "report":
            report = build_report(load_aggregate(args.dir))
            if args.json:
                print(json.dumps(report, indent=2))
            else:
                print(render_report(report), end="")
            return 0 if report["ok"] else 1

        # ls: cell-by-cell completion state of the campaign directory
        config = load_manifest(args.dir)
        grid = build_grid(config)
        digest = config.digest()
        done = missing = quarantined = 0
        for cell in grid:
            if os.path.exists(quarantine_path(args.dir, cell.cell_id)):
                state = "quarantined"
                quarantined += 1
            elif os.path.exists(cell_result_path(args.dir, cell.cell_id)):
                state = "done"
                done += 1
            else:
                state = "missing"
                missing += 1
            if args.verbose or state != "done":
                print(f"{state:<12} {cell.cell_id}")
        print(
            f"{len(grid)} cells (digest {digest[:12]}): {done} done, "
            f"{missing} missing, {quarantined} quarantined"
        )
        return 0
    except (FleetError, DurableError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_recover(args: argparse.Namespace) -> int:
    """Inspect a durable recovery directory (ls / dump / verify)."""
    import os

    from repro.recovery.durable import (
        DurableError, DurableStore, FrameStore, MANIFEST_NAME,
    )
    from repro.recovery.wal import WalError, scan

    root = args.dir
    if not os.path.isdir(root):
        print(f"{root}: not a directory", file=sys.stderr)
        return 2
    store = DurableStore(root)

    if args.action == "verify":
        try:
            report = store.verify()
        except (DurableError, WalError, OSError) as error:
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
        print(json.dumps(report, indent=2))
        print("ok: manifest, checkpoints and WAL are consistent")
        return 0

    manifest_path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        print(f"{root}: no {MANIFEST_NAME} (not a durable recovery dir)", file=sys.stderr)
        return 1
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    wal_path = os.path.join(root, manifest["wal"])

    if args.action == "ls":
        print(f"{root}: durable recovery state "
              f"(config {manifest['config_digest'][:12]}, "
              f"{manifest['commits']} commit(s))")
        for name in sorted(manifest["epochs"]):
            filename = manifest["ckpts"][name]
            size = os.path.getsize(os.path.join(store.ckpts.root, filename))
            print(f"  ckpt  {name:<16} epoch {manifest['epochs'][name]:>4}  "
                  f"{size:>8} B  {filename}")
        if os.path.exists(wal_path):
            records, good, tail = scan(wal_path)
            counts: dict = {}
            for record in records:
                counts[record["t"]] = counts.get(record["t"], 0) + 1
            summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"  wal   {manifest['wal']:<16} {good:>8} B  tail={tail}  {summary}")
        frames = FrameStore(os.path.join(root, "frames"))
        if frames.count():
            print(f"  frames/{'':<15} {frames.count()} frame(s) on disk")
        return 0

    if args.action == "dump":
        records, good, tail = scan(wal_path)
        shown = records if args.limit is None else records[: args.limit]
        for i, record in enumerate(shown):
            kind = record["t"]
            if kind == "send":
                src, iface = record["key"]
                comp, prov = record["target"]
                msg = record["msg"]
                print(f"{i:>6} send  uid={record['uid']:<6} dseq={record['dseq']:<5} "
                      f"{src}.{iface} -> {comp}.{prov} kind={msg['kind']} "
                      f"tag={msg['tag']!r} bytes={msg['size_bytes']}")
            elif kind == "acks":
                pairs = ", ".join(f"{s}.{i}#{d}" for (s, i), d in record["msgs"])
                print(f"{i:>6} acks  {pairs}")
            elif kind == "ckpt":
                print(f"{i:>6} ckpt  {record['component']} epoch={record['epoch']}")
            else:
                print(f"{i:>6} {kind}  {record}")
        if args.limit is not None and len(records) > args.limit:
            print(f"... {len(records) - args.limit} more record(s)")
        print(f"{len(records)} record(s), {good} trusted byte(s), tail={tail}")
        return 0

    raise AssertionError(f"unhandled recover action {args.action!r}")  # pragma: no cover


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.metrics import Table
    from repro.metrics.analysis import backpressure_report
    from repro.mjpeg import generate_stream
    from repro.mjpeg.components import build_smp_assembly
    from repro.runtime import ShardedSmpSimRuntime, SmpSimRuntime
    from repro.trace import (
        SpanGraph,
        enable_sharded_tracing,
        enable_tracing,
        merge_buffers,
        queue_depth_series,
        write_chrome_trace,
        write_columns,
    )

    stream = generate_stream(args.images, 96, 96, quality=75, seed=0)
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    if args.shards > 1:
        # Sharded run: one trace buffer per shard, merged afterwards on
        # the (timestamp, shard, sequence) key -- see docs/observing.md,
        # "Merging multi-shard traces".
        rt = ShardedSmpSimRuntime(args.shards)
        rt.deploy(app)
        shard_buffers = enable_sharded_tracing(rt)
        if args.metrics is not None:
            from repro.metrics import enable_telemetry

            enable_telemetry(rt)
        rt.start()
        rt.wait()
        rt.stop()
        buffer = merge_buffers(shard_buffers)
        print(
            f"merged {len(shard_buffers)} shard buffers "
            f"({', '.join(str(len(b)) for b in shard_buffers)} events) "
            f"over {rt.sim.sweeps} sweeps"
        )
    else:
        rt = SmpSimRuntime()
        rt.deploy(app)
        buffer = enable_tracing(rt)
        if args.metrics is not None:
            from repro.metrics import enable_telemetry

            enable_telemetry(rt)
        rt.start()
        rt.wait()
        rt.stop()

    graph = SpanGraph.from_trace(buffer)
    items = graph.attribute_items("frame")
    if not items:
        print("no frames delivered; nothing to attribute", file=sys.stderr)
        return 1
    worst = max(items, key=lambda it: it.e2e_ns)

    print(
        f"{len(items)} frames delivered; {len(graph.edges)} spans, "
        f"{len(graph.dropped)} dropped, {buffer.dropped} trace events truncated"
    )
    print(
        f"\ncritical path (slowest frame, span {worst.item_span}): "
        f"e2e {worst.e2e_ns / 1e3:.1f} us, attributed {worst.attributed_ns / 1e3:.1f} us"
    )
    table = Table(
        ["hop", "op", "mailbox", "compute (us)", "send (us)", "queue (us)", "recv (us)"]
    )
    for hop in worst.hops:
        e = hop.edge
        table.add_row(
            [
                f"{e.src}.{e.iface}",
                e.op,
                e.mailbox,
                round(hop.compute_ns / 1e3, 1),
                round(hop.send_ns / 1e3, 1),
                round(hop.queue_ns / 1e3, 1),
                round(hop.recv_ns / 1e3, 1),
            ]
        )
    print(table.render())

    breakdown = worst.breakdown()
    total = sum(breakdown.values()) or 1
    shares = ", ".join(
        f"{seg.removesuffix('_ns')} {100 * v / total:.0f}%" for seg, v in breakdown.items()
    )
    print(f"attribution: {shares}")

    mean_e2e = sum(it.e2e_ns for it in items) / len(items)
    print(
        f"frame latency: mean {mean_e2e / 1e3:.1f} us, "
        f"worst {worst.e2e_ns / 1e3:.1f} us over {len(items)} frames"
    )

    pressure = backpressure_report(queue_depth_series(buffer))
    busiest = sorted(pressure.items(), key=lambda kv: -kv[1]["mean_depth"])[:5]
    print("\nbusiest mailboxes (time-weighted mean depth):")
    for mailbox, stats in busiest:
        print(
            f"  {mailbox:<24} mean {stats['mean_depth']:5.2f}  "
            f"peak {stats['peak_depth']:3d}  final {stats['final_depth']}"
        )

    columns_path = f"{args.out}.columns.json"
    chrome_path = f"{args.out}.chrome.json"
    n_cols = write_columns(buffer, columns_path)
    n_chrome = write_chrome_trace(buffer.events(), chrome_path)
    print(f"\nwrote {columns_path} ({n_cols} events)")
    print(f"wrote {chrome_path} ({n_chrome} records; open in https://ui.perfetto.dev)")
    if args.metrics is not None:
        from repro.metrics import collect_telemetry, write_metrics

        registry = collect_telemetry(rt)
        write_metrics(
            args.metrics, registry,
            meta={"command": "trace", "images": args.images, "shards": args.shards},
        )
        print(f"wrote {args.metrics} ({len(registry.instruments())} instruments)")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live ascii dashboard over the MJPEG SMP decode telemetry.

    Runs the decode with the telemetry plane enabled, then renders the
    per-component table plus the windowed message-rate / latency chart.
    With ``--watch`` the recorded window series is replayed as live
    frames (one per telemetry window, ``--interval`` seconds apart),
    each redrawing the terminal like ``top``.
    """
    import time

    from repro.metrics import collect_telemetry, enable_telemetry
    from repro.metrics.dashboard import CLEAR, iter_frames, render_dashboard
    from repro.mjpeg import generate_stream
    from repro.mjpeg.components import build_smp_assembly
    from repro.runtime import ShardedSmpSimRuntime, SmpSimRuntime

    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    stream = generate_stream(args.images, 96, 96, quality=75, seed=0)
    app = build_smp_assembly(stream, use_stored_coefficients=True, keep_frames=True)
    rt = SmpSimRuntime() if args.shards == 1 else ShardedSmpSimRuntime(args.shards)
    rt.deploy(app)
    enable_telemetry(rt)
    rt.start()
    rt.wait()
    rt.collect()
    rt.stop()
    registry = collect_telemetry(rt)

    if args.watch:
        for frame in iter_frames(registry, width=args.width):
            print(CLEAR, end="")
            print(frame)
            time.sleep(args.interval)
    else:
        title = f"repro top -- mjpeg decode, {args.images} images, {args.shards} shard(s)"
        print(render_dashboard(registry, width=args.width, title=title))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EMBera reproduction: component-based observation of MPSoC",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the built-in platform inventory")

    demo_smp = sub.add_parser("demo-smp", help="MJPEG decoder on the SMP model")
    demo_smp.add_argument("images", nargs="?", type=int, default=20)

    demo_sti = sub.add_parser("demo-sti7200", help="MJPEG decoder on the STi7200 model")
    demo_sti.add_argument("images", nargs="?", type=int, default=20)

    observe = sub.add_parser(
        "observe", help="observe a native-runtime pipeline, dump JSON",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "output schema (JSON object):\n"
            "  '<component>/os'           exec_time_us, memory_kb, stack_kb\n"
            "  '<component>/middleware'   sends, receives, queue_depths,\n"
            "                             per-interface message/byte counts, and\n"
            "                             'telemetry': {send_duration_ns |\n"
            "                             receive_duration_ns |\n"
            "                             delivery_latency_ns: {iface: {count,\n"
            "                             p50_ns, p90_ns, p99_ns, p999_ns}}}\n"
            "                             streaming-histogram percentiles\n"
            "                             (log2 buckets, no per-sample storage)\n"
            "  '<component>/application'  sends/receives/faults plus 'contracts':\n"
            "                             {contracts: {iface: clauses}, violations,\n"
            "                             violations_by_interface} when the\n"
            "                             component declares interface contracts\n"
            "  'contract_violations'      observer-wide rollup: {total,\n"
            "                             by_component: {name: {contracts,\n"
            "                             violations, by_interface}}}\n"
        ),
    )

    bench = sub.add_parser("bench", help="run microbenches, write BENCH_*.json")
    bench.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke run)"
    )
    bench.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the per-frame decode benches across N processes",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="re-run kernel hot-path benches and fail on a >25% regression "
        "versus the committed BENCH_kernel.json (writes nothing)",
    )
    bench.add_argument(
        "--profile", dest="pstats", metavar="OUT.pstats", default=None,
        help="run under cProfile and dump the stats to OUT.pstats "
        "(inspect with `python -m pstats OUT.pstats`)",
    )

    run = sub.add_parser(
        "run", help="MJPEG SMP decode; prints the frame-set sha256 (CI contract)"
    )
    run.add_argument(
        "--workload", choices=("mjpeg", "traffic"), default="mjpeg",
        help="mjpeg: the paper's decode pipeline ('frames sha256:' "
        "contract); traffic: the generated fan-in/fan-out service graph "
        "of --components lightweight components ('trace sha256:' contract)",
    )
    run.add_argument(
        "--components", type=int, default=1000, metavar="N",
        help="traffic workload size (components in the service graph)",
    )
    run.add_argument(
        "--ticks", type=int, default=3, metavar="T",
        help="traffic workload load ticks (request waves per session)",
    )
    run.add_argument("--images", type=int, default=8, help="stream length")
    run.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the simulation across N conservative shards "
        "(1 = plain single-kernel runtime; output is identical for any N)",
    )
    run.add_argument(
        "--parallel", action="store_true",
        help="execute shard windows on OS threads (same results as the "
        "cooperative driver; needs --shards > 1)",
    )
    run.add_argument(
        "--metrics", metavar="OUT", default=None,
        help="enable the live telemetry plane and write the merged registry "
        "to OUT (.prom/.txt = Prometheus text, else JSON); pins the "
        "placement and prints a shard-count-invariant 'metrics sha256:' line",
    )
    run.add_argument(
        "--record-profile", metavar="OUT.json", default=None,
        help="dump the observed traffic (per-component busy time, per-edge "
        "message counts) as a repro.profile/v1 document after the run",
    )
    run.add_argument(
        "--repartition", metavar="PROFILE.json", default=None,
        help="partition by a recorded repro.profile/v1 document (observed "
        "busy time weights the nodes, message counts weight the edges) "
        "instead of the static min-cut heuristic",
    )
    run.add_argument(
        "--profile", dest="pstats", metavar="OUT.pstats", default=None,
        help="run under cProfile and dump the stats to OUT.pstats "
        "(inspect with `python -m pstats OUT.pstats`)",
    )

    faults = sub.add_parser(
        "faults", help="seeded chaos campaign on the MJPEG SMP demo"
    )
    faults.add_argument("--seed", type=int, default=0, help="campaign seed")
    faults.add_argument("--images", type=int, default=10, help="stream length")
    faults.add_argument(
        "--drop-rate", type=float, default=0.05, help="message-drop probability"
    )
    faults.add_argument("--crashes", type=int, default=3, help="scheduled crash count")
    faults.add_argument(
        "--recover",
        action="store_true",
        help="install the recovery manager: checkpoints, acked delivery and "
        "crash-consistent replay; requires the complete frame set bit-exact",
    )
    faults.add_argument(
        "--durable", metavar="DIR", default=None,
        help="run the campaign in a supervised child OS process with its "
        "recovery state (WAL + checkpoints + frames) persisted in DIR; "
        "requires --recover",
    )
    faults.add_argument(
        "--kill9", type=int, default=None, metavar="K",
        help="with --durable: schedule K real SIGKILLs of the component "
        "process at seed-derived durable-frame counts (default 1)",
    )
    faults.add_argument(
        "--metrics", metavar="OUT", default=None,
        help="write the campaign's telemetry registry (latency histograms, "
        "restart/MTTR series, contract-violation counters) to OUT "
        "(.prom/.txt = Prometheus text, else JSON)",
    )

    campaign = sub.add_parser(
        "campaign",
        help="fleet chaos campaign: run/resume a resumable cell grid, "
        "render the Pareto decision report",
    )
    campaign.add_argument(
        "action", choices=("run", "resume", "report", "ls"),
        help="run: start (or idempotently continue) a campaign; resume: "
        "complete the missing cells of an interrupted one; report: render "
        "the decision-support report from the aggregate; ls: list cell "
        "completion state",
    )
    campaign.add_argument("dir", help="campaign directory")
    campaign.add_argument(
        "--seeds", default="1,7,42", metavar="S,S,...",
        help="comma-separated campaign seeds (run only)",
    )
    campaign.add_argument(
        "--classes", default="crash,drop,duplicate,stall,mixed",
        metavar="C,C,...", help="fault classes of the grid (run only)",
    )
    campaign.add_argument(
        "--intensities", default="light,heavy", metavar="I,I,...",
        help="fault intensities of the grid (run only)",
    )
    campaign.add_argument(
        "--policies", default="restart,restart-jitter,degrade,halt,recover",
        metavar="P,P,...", help="supervision policies of the grid (run only)",
    )
    campaign.add_argument(
        "--shards", default="1,2", metavar="N,N,...",
        help="platform shard counts of the grid (run only); the recover "
        "policy is skipped on sharded platforms",
    )
    campaign.add_argument(
        "--images", type=int, default=4, help="stream length per cell (run only)"
    )
    campaign.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-pool size (default: min(8, cpu count))",
    )
    campaign.add_argument(
        "--cell-timeout", type=float, default=120.0, metavar="S",
        help="kill a cell worker after S seconds (hung-worker reaping)",
    )
    campaign.add_argument(
        "--max-attempts", type=int, default=3, metavar="K",
        help="quarantine a cell after K failed attempts",
    )
    campaign.add_argument(
        "--json", action="store_true",
        help="machine-readable output (summary / report as JSON)",
    )
    campaign.add_argument(
        "--verbose", action="store_true",
        help="ls: list completed cells too, not only missing/quarantined",
    )

    recover = sub.add_parser(
        "recover", help="inspect a durable recovery directory (WAL, checkpoints)"
    )
    recover.add_argument(
        "action", choices=("ls", "dump", "verify"),
        help="ls: summarize; dump: print WAL records; verify: check consistency",
    )
    recover.add_argument("dir", help="durable recovery directory")
    recover.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="dump: show at most N records",
    )

    trace = sub.add_parser(
        "trace", help="causal trace of the MJPEG SMP demo (critical path, flows)"
    )
    trace.add_argument("--images", type=int, default=8, help="stream length")
    trace.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="trace a sharded run: one buffer per shard, merged for analysis",
    )
    trace.add_argument(
        "--out", default="TRACE_mjpeg", help="output path prefix for trace artifacts"
    )
    trace.add_argument(
        "--metrics", metavar="OUT", default=None,
        help="also run the telemetry plane and write the registry to OUT",
    )

    top = sub.add_parser(
        "top", help="live ascii telemetry dashboard over the MJPEG SMP decode"
    )
    top.add_argument("--images", type=int, default=8, help="stream length")
    top.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run (and merge telemetry) across N conservative shards",
    )
    top.add_argument(
        "--watch", action="store_true",
        help="replay the recorded telemetry windows as live frames, "
        "redrawing the terminal per window",
    )
    top.add_argument(
        "--interval", type=float, default=0.5, metavar="S",
        help="seconds between --watch frames (default 0.5)",
    )
    top.add_argument(
        "--width", type=int, default=72, help="dashboard width in columns"
    )
    return parser


def _profiled(args: argparse.Namespace, fn) -> int:
    """Run ``fn()`` under cProfile when ``--profile OUT.pstats`` was
    given (the stats file is written even if the command fails)."""
    path = getattr(args, "pstats", None)
    if path is None:
        return fn()
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(f"wrote {path} (inspect with `python -m pstats {path}`)")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "demo-smp":
        return _demo("smp", args.images)
    if args.command == "demo-sti7200":
        return _demo("sti7200", args.images)
    if args.command == "observe":
        return _cmd_observe(args)
    if args.command == "bench":
        return _profiled(args, lambda: _cmd_bench(args))
    if args.command == "run":
        return _profiled(args, lambda: _cmd_run(args))
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
