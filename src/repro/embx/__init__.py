"""EMBX-like shared-memory middleware for the STi7200 model.

The real EMBX (STMicroelectronics) manages shared-memory regions called
*distributed objects*, written by an asynchronous ``EMBX_Send`` and read
by a synchronous ``EMBX_Receive``, with an interrupt controller signalling
availability (paper section 5).  This module reproduces that API over the
simulated platform.
"""

from repro.embx.transport import (
    BOUNCE_BUFFER_BYTES,
    BOUNCE_PENALTY,
    DistributedObject,
    EmbxError,
    EmbxTransport,
)

__all__ = [
    "BOUNCE_BUFFER_BYTES",
    "BOUNCE_PENALTY",
    "DistributedObject",
    "EmbxError",
    "EmbxTransport",
]
