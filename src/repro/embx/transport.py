"""Distributed objects and the EMBX_Send / EMBX_Receive primitives.

Cost model
----------
A send writes the message into the shared SDRAM block.  Transfers up to
the hardware transfer-buffer size (50 kB) stream at the sender CPU's
native per-byte copy cost; beyond that the transport falls back to a
bounce-buffer double copy, so the marginal per-byte cost jumps by
``BOUNCE_PENALTY``.  This is what produces Figure 8's shape: "the
performance of the EMBera send function is linear for message sizes
smaller than 50 kB.  Over 50 kB, the send function decreases its
performance."

Per-CPU asymmetry (ST40 slower than ST231 at equal size) comes from the
``memcpy_byte`` cycle costs in the platform's CPU models -- the transport
just yields :class:`~repro.sim.executor.Compute` commands and lets the
core the caller runs on price them.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.hw.memory import MemoryRegion
from repro.sim.executor import Compute
from repro.sim.process import Command
from repro.sim.resources import Channel

#: Hardware transfer-buffer size; messages beyond it pay the bounce copy.
BOUNCE_BUFFER_BYTES = 50 * 1024
#: Marginal per-byte multiplier past the transfer buffer.
BOUNCE_PENALTY = 1.8
#: Interrupt-controller signalling latency per message (ns).
SIGNAL_LATENCY_NS = 5_000
#: Default distributed-object footprint, Table 3: "25 kB for one
#: distributed object".
DEFAULT_OBJECT_BYTES = 25 * 1024


class EmbxError(Exception):
    """Raised on invalid transport usage."""


class EmbxTimeout(EmbxError):
    """An ``EMBX_Receive`` with a deadline expired before data arrived."""


class DistributedObject:
    """A named shared-memory region readable through EMBX_Receive.

    The footprint is fixed at creation time, matching the paper: "This
    size value is fixed and gathered at component creation time."
    """

    __slots__ = (
        "name", "size_bytes", "owner_cpu", "queue", "_region", "_handle", "closed",
        "sends", "receives", "peak_depth",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        owner_cpu: int,
        queue: Channel,
        region: MemoryRegion,
        handle: int,
    ) -> None:
        self.name = name
        self.size_bytes = size_bytes
        self.owner_cpu = owner_cpu
        self.queue = queue
        self._region = region
        self._handle = handle
        self.closed = False
        #: Per-object traffic accounting: message counts and the deepest
        #: the object's queue ever got (the transport-level backpressure
        #: high-water mark the causal analysis cross-checks against).
        self.sends = 0
        self.receives = 0
        self.peak_depth = 0

    def requeue(self, payload: Any, nbytes: int) -> None:
        """Front-insert a retransmitted message (recovery replay).

        The copy already paid its transport cost on the original
        ``EMBX_Send``; the replay is served from the sender-side
        retransmit buffer straight into the object's queue, so only the
        object-level accounting moves (the receive side still charges its
        read copy when the message is drained).
        """
        if self.closed:
            raise EmbxError(f"requeue on destroyed object {self.name!r}")
        self.queue.put_front((payload, nbytes))
        self.sends += 1
        depth = len(self.queue)
        if depth > self.peak_depth:
            self.peak_depth = depth

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DistributedObject {self.name!r} {self.size_bytes}B cpu={self.owner_cpu}>"


class EmbxTransport:
    """Factory and send/receive engine over one shared memory region."""

    def __init__(
        self,
        kernel,
        shared_region: MemoryRegion,
        bounce_bytes: int = BOUNCE_BUFFER_BYTES,
        bounce_penalty: float = BOUNCE_PENALTY,
        signal_latency_ns: int = SIGNAL_LATENCY_NS,
    ) -> None:
        if bounce_bytes <= 0 or bounce_penalty < 1.0:
            raise EmbxError("invalid bounce buffer configuration")
        self.kernel = kernel
        self.shared_region = shared_region
        self.bounce_bytes = bounce_bytes
        self.bounce_penalty = bounce_penalty
        self.signal_latency_ns = signal_latency_ns
        self.objects: dict[str, DistributedObject] = {}
        self.sends = 0
        self.receives = 0
        #: Interrupts raised per owner CPU: every send signals the
        #: receiving CPU through the shared interrupt controller.
        self.interrupts_by_cpu: dict[int, int] = {}

    # -- telemetry -------------------------------------------------------------

    def stamp_metrics(self, registry) -> None:
        """Stamp the transport's live state into a
        :class:`~repro.metrics.telemetry.MetricsRegistry` as gauges:
        per-distributed-object traffic and depth, transport totals, and
        interrupts per owner CPU.  Gauges (not counters) because these
        are point-in-time readings of transport-owned state, sampled at
        collection time rather than streamed per event."""
        ts = registry.last_ns
        for name in sorted(self.objects):
            obj = self.objects[name]
            registry.gauge("embx_object_sends", object=name).set(obj.sends, ts)
            registry.gauge("embx_object_receives", object=name).set(obj.receives, ts)
            registry.gauge("embx_object_peak_depth", object=name).set(obj.peak_depth, ts)
            registry.gauge("embx_object_queue_depth", object=name).set(len(obj.queue), ts)
        registry.gauge("embx_sends").set(self.sends, ts)
        registry.gauge("embx_receives").set(self.receives, ts)
        for cpu in sorted(self.interrupts_by_cpu):
            registry.gauge("embx_interrupts", cpu=cpu).set(self.interrupts_by_cpu[cpu], ts)

    # -- object lifecycle ------------------------------------------------------

    def create_object(
        self, name: str, owner_cpu: int, size_bytes: int = DEFAULT_OBJECT_BYTES
    ) -> DistributedObject:
        """Allocate a distributed object in the shared region."""
        if name in self.objects:
            raise EmbxError(f"distributed object {name!r} already exists")
        handle = self.shared_region.alloc(size_bytes, label=f"embx:{name}", time_ns=self.kernel.now)
        queue = Channel(self.kernel, name=f"embx.{name}")
        obj = DistributedObject(name, size_bytes, owner_cpu, queue, self.shared_region, handle)
        self.objects[name] = obj
        return obj

    def destroy_object(self, obj: DistributedObject) -> None:
        """Release a distributed object and its shared memory."""
        if obj.closed:
            raise EmbxError(f"object {obj.name!r} already destroyed")
        obj.closed = True
        self.shared_region.free(obj._handle, time_ns=self.kernel.now)
        del self.objects[obj.name]

    # -- cost model ---------------------------------------------------------------

    def effective_copy_bytes(self, nbytes: int) -> float:
        """Bytes charged at the CPU's memcpy rate, including bounce penalty."""
        if nbytes <= self.bounce_bytes:
            return float(nbytes)
        return self.bounce_bytes + self.bounce_penalty * (nbytes - self.bounce_bytes)

    # -- primitives ------------------------------------------------------------------

    def send(
        self, obj: DistributedObject, payload: Any, nbytes: int
    ) -> Generator[Command, Any, None]:
        """``EMBX_Send``: asynchronous write into the distributed object.

        Charges the *calling* CPU for the copy plus the interrupt signal,
        then deposits the message.  Returns as soon as the write is done
        (the receiver need not be waiting).
        """
        if obj.closed:
            raise EmbxError(f"send on destroyed object {obj.name!r}")
        if nbytes < 0:
            raise EmbxError(f"negative message size {nbytes}")
        yield Compute("memcpy_byte", self.effective_copy_bytes(nbytes))
        yield Compute("ns", self.signal_latency_ns)
        obj.queue.put((payload, nbytes))
        obj.sends += 1
        depth = len(obj.queue)
        if depth > obj.peak_depth:
            obj.peak_depth = depth
        self.sends += 1
        self.interrupts_by_cpu[obj.owner_cpu] = self.interrupts_by_cpu.get(obj.owner_cpu, 0) + 1

    def receive(
        self, obj: DistributedObject, timeout_ns: Optional[int] = None
    ) -> Generator[Command, Any, tuple]:
        """``EMBX_Receive``: synchronous read from the distributed object.

        Blocks until a message is available, charges the calling CPU for
        the read copy, and returns ``(payload, nbytes)``.  With
        ``timeout_ns`` set, raises :class:`EmbxTimeout` when the deadline
        expires first (the blocking-with-timeout variant of the API).
        """
        if obj.closed:
            raise EmbxError(f"receive on destroyed object {obj.name!r}")
        if timeout_ns is None:
            payload, nbytes = yield from obj.queue.get()
        else:
            ok, item = yield from obj.queue.get_with_deadline(timeout_ns)
            if not ok:
                raise EmbxTimeout(
                    f"EMBX_Receive on {obj.name!r} expired after {timeout_ns} ns"
                )
            payload, nbytes = item
        yield Compute("memcpy_byte", self.effective_copy_bytes(nbytes))
        obj.receives += 1
        self.receives += 1
        return payload, nbytes
