"""Ablation A6 -- time-slice length under oversubscription.

The paper deploys 5 components on 16 cores, so its Linux scheduler never
has to time-share.  Future MPSoC "will integrate dozens and even
hundreds of computing cores" (section 1) -- and, symmetrically,
applications with more components than cores.  This ablation
oversubscribes the SMP model (24 components on 4 cores) and sweeps the
scheduler quantum: long quanta approach run-to-completion (low switch
overhead-free makespan variance, high per-component latency variance);
short quanta equalise progress at the cost of many context switches.
"""

from repro.core import Application
from repro.hw import CpuModel, MemoryRegion, Platform
from repro.metrics import Table
from repro.runtime import SmpSimRuntime

from benchmarks.conftest import save_result

N_COMPONENTS = 24
N_CORES = 4
WORK_NS = 3_000_000
QUANTA_NS = (100_000, 1_000_000, 10_000_000, 100_000_000)


def small_platform():
    cores = [CpuModel(f"c{i}", 1e9, {"syscall": 1000}) for i in range(N_CORES)]
    return Platform(
        "smp4",
        cores=cores,
        core_nodes=[0] * N_CORES,
        regions={"node0": MemoryRegion("node0", 1 << 32, node=0)},
    )


def run_with_quantum(quantum_ns):
    app = Application(f"oversub-{quantum_ns}")
    for i in range(N_COMPONENTS):
        def body(ctx, n=WORK_NS):
            yield from ctx.compute("ns", n)

        # all components share the core pool (no pinning)
        comp = app.create(f"w{i}", behavior=body)
        comp.placement["core"] = i % N_CORES
    rt = SmpSimRuntime(platform=small_platform(), quantum_ns=quantum_ns)
    rt.run(app)
    finish_times = [
        cont.handle.end_time_ns
        for cont in rt.containers.values()
        if cont.handle is not None
    ]
    switches = sum(
        cont.handle.context_switches
        for cont in rt.containers.values()
        if cont.handle is not None
    )
    first = min(finish_times)
    last = max(finish_times)
    return {
        "makespan_ms": rt.makespan_ns / 1e6,
        "first_done_ms": first / 1e6,
        "spread_ms": (last - first) / 1e6,
        "switches": switches,
    }


def run_sweep():
    return {q: run_with_quantum(q) for q in QUANTA_NS}


def test_scheduler_quantum(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["Quantum (ms)", "Makespan (ms)", "First done (ms)", "Finish spread (ms)", "Switches"],
        title=f"Ablation A6: {N_COMPONENTS} components on {N_CORES} cores (SMP sim)",
    )
    for q, r in results.items():
        table.add_row(
            [q / 1e6, round(r["makespan_ms"], 2), round(r["first_done_ms"], 2),
             round(r["spread_ms"], 2), r["switches"]]
        )
    save_result("ablation_scheduler_quantum", table.render())

    total_ms = N_COMPONENTS * WORK_NS / N_CORES / 1e6
    for q, r in results.items():
        # work conservation: the makespan never beats total work / cores
        assert r["makespan_ms"] >= total_ms * 0.999, (q, r)
    # short quanta: fair progress -> everyone finishes close together
    assert results[100_000]["spread_ms"] <= 0.6
    # long quanta: run-to-completion -> the first component finishes after
    # ~its own work, far before the last
    assert results[100_000_000]["first_done_ms"] < 2 * WORK_NS / 1e6
    assert results[100_000_000]["spread_ms"] > results[100_000]["spread_ms"] * 5
    # fairness costs context switches
    assert results[100_000]["switches"] > 3 * results[100_000_000]["switches"]
