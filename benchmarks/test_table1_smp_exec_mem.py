"""Table 1 -- MJPEG component execution time and memory on the SMP.

Paper (578 / 3000 images, microseconds / kB):

    Component   Time578 (us)   Time3000 (us)   Mem (kB)
    Fetch          4 084 000      20 088 000      8 392
    IDCTx          4 084 000      20 218 000     10 850
    Reorder        4 086 000      21 538 000     13 308

Shape claims checked here: (1) the three parallel IDCTs balance the
pipeline, so all components' wall times agree within ~35%; (2) time grows
linearly with the image count; (3) memory is exactly stack 8 392 kB plus
2 458 kB per functional provided interface; (4) completion order is
Fetch <= IDCT <= Reorder, as in the paper's rows.
"""

import pytest

from repro.core import OS_LEVEL
from repro.metrics import Table
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime

from benchmarks.conftest import N_LARGE, N_SMALL, SCALE, save_result

COMPONENTS = ("Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder")

PAPER_US = {  # Table 1, grouped IDCT row expanded
    "Fetch": (4_084_000, 20_088_000),
    "IDCT_1": (4_084_000, 20_218_000),
    "IDCT_2": (4_084_000, 20_218_000),
    "IDCT_3": (4_084_000, 20_218_000),
    "Reorder": (4_086_000, 21_538_000),
}
PAPER_MEM_KB = {
    "Fetch": 8_392,
    "IDCT_1": 10_850,
    "IDCT_2": 10_850,
    "IDCT_3": 10_850,
    "Reorder": 13_308,
}


def run_once(stream):
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    return {
        name: reports[(name, OS_LEVEL)] for name in COMPONENTS
    }


def test_table1(benchmark, small_stream, large_stream):
    os_small = benchmark.pedantic(run_once, args=(small_stream,), rounds=1, iterations=1)
    os_large = run_once(large_stream)

    table = Table(
        ["Component", f"Time{N_SMALL} (us)", f"Time{N_LARGE} (us)", "Mem (kB)",
         "paper Time578/scale", "paper Mem (kB)"],
        title="Table 1: MJPEG components execution time and memory (SMP sim)",
    )
    for name in COMPONENTS:
        table.add_row(
            [
                name,
                os_small[name]["exec_time_us"],
                os_large[name]["exec_time_us"],
                os_small[name]["memory_kb"],
                round(PAPER_US[name][0] / SCALE),
                PAPER_MEM_KB[name],
            ]
        )
    save_result("table1_smp_exec_mem", table.render())

    # (1) balance across components
    small_times = [os_small[n]["exec_time_us"] for n in COMPONENTS]
    assert max(small_times) / min(small_times) < 1.35, small_times
    # (2) linear growth with image count
    ratio = os_large["Fetch"]["exec_time_us"] / os_small["Fetch"]["exec_time_us"]
    expected = N_LARGE / N_SMALL
    assert expected * 0.8 < ratio < expected * 1.2, ratio
    # (3) memory exact
    for name in COMPONENTS:
        assert os_small[name]["memory_kb"] == PAPER_MEM_KB[name]
    # (4) completion ordering matches the paper's rows
    assert (
        os_small["Fetch"]["exec_time_us"]
        <= os_small["IDCT_1"]["exec_time_us"]
        <= os_small["Reorder"]["exec_time_us"]
    )
    # (5) absolute scale sanity: per-image stage time ~7 ms (model target)
    per_image_us = os_small["Fetch"]["exec_time_us"] / N_SMALL
    assert per_image_us == pytest.approx(7_066, rel=0.25)
