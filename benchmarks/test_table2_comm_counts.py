"""Table 2 -- communication operations performed per component.

Paper (578 / 3000 images):

    Component   send578   recv578   send3000   recv3000
    Fetch        10 386         0     53 982          0
    IDCTx         3 462     3 462     17 994     17 994
    Reorder           0    10 386          0     53 982

These counts are structural (18 block messages per image after the
priming frame, fanned over 3 IDCTs), so they reproduce **exactly**:
``send = 18 * (N - 1)`` -- 10 386 = 18 x 577 and 53 982 = 18 x 2 999.
At full scale (REPRO_FULL=1) the assertions check the paper's literal
numbers.
"""

from repro.core import APPLICATION_LEVEL
from repro.metrics import Table
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime

from benchmarks.conftest import FULL_SCALE, N_LARGE, N_SMALL, save_result

COMPONENTS = ("Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder")


def counts_for(stream):
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    return {
        name: (
            reports[(name, APPLICATION_LEVEL)]["sends"],
            reports[(name, APPLICATION_LEVEL)]["receives"],
        )
        for name in COMPONENTS
    }


def test_table2(benchmark, small_stream, large_stream):
    small = benchmark.pedantic(counts_for, args=(small_stream,), rounds=1, iterations=1)
    large = counts_for(large_stream)

    table = Table(
        ["Component", f"send{N_SMALL}", f"recv{N_SMALL}", f"send{N_LARGE}", f"recv{N_LARGE}"],
        title="Table 2: MJPEG components communication operations (SMP sim)",
    )
    for name in COMPONENTS:
        table.add_row([name, *small[name], *large[name]])
    save_result("table2_comm_counts", table.render())

    for n_images, counts in ((N_SMALL, small), (N_LARGE, large)):
        total = 18 * (n_images - 1)
        assert counts["Fetch"] == (total, 0)
        assert counts["Reorder"] == (0, total)
        for i in (1, 2, 3):
            assert counts[f"IDCT_{i}"] == (total // 3, total // 3)

    if FULL_SCALE:
        assert small["Fetch"] == (10_386, 0)
        assert small["IDCT_1"] == (3_462, 3_462)
        assert small["Reorder"] == (0, 10_386)
        assert large["Fetch"] == (53_982, 0)
        assert large["IDCT_1"] == (17_994, 17_994)
        assert large["Reorder"] == (0, 53_982)
