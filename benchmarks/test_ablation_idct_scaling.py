"""Ablation A5 -- IDCT parallelism and the predicted bottleneck shift.

Paper section 4.4: "the execution times indicate that the application is
well load-balanced for the JPEG input size but if that size changes, the
execution times could cause a bottleneck on the IDCT components."

We sweep the number of IDCT components (1..5) and report, from the
observation data alone (via :mod:`repro.metrics.analysis`), the
bottleneck stage, the imbalance factor and the pipeline makespan: with
fewer than 3 IDCTs the IDCT stage bottlenecks; with 3 the pipeline is
balanced (the paper's design point); beyond 3 the extra components idle.
"""

from repro.metrics import Table
from repro.metrics.analysis import load_balance
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime

from benchmarks.conftest import cached_stream, save_result

N_IMAGES = 24
SWEEP = (1, 2, 3, 4, 5)


def run_with(n_idct, stream):
    app = build_smp_assembly(stream, n_idct=n_idct, use_stored_coefficients=True)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    balance = load_balance(reports)
    return {
        "bottleneck": balance.bottleneck,
        "imbalance": balance.imbalance,
        "makespan_ms": rt.makespan_ns / 1e6,
    }


def run_sweep():
    stream = cached_stream(N_IMAGES)
    return {n: run_with(n, stream) for n in SWEEP}


def test_idct_scaling(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["IDCT components", "Bottleneck", "Imbalance", "Makespan (ms)"],
        title=f"Ablation A5: IDCT parallelism ({N_IMAGES} images, SMP sim)",
    )
    for n, r in results.items():
        table.add_row([n, r["bottleneck"], round(r["imbalance"], 2), round(r["makespan_ms"], 1)])
    save_result("ablation_idct_scaling", table.render())

    # 1-2 IDCTs: the IDCT stage is the bottleneck the paper predicts
    assert results[1]["bottleneck"].startswith("IDCT")
    assert results[2]["bottleneck"].startswith("IDCT")
    assert results[1]["imbalance"] > 1.5
    # 3 IDCTs: the paper's design point is balanced
    assert results[3]["imbalance"] < 1.25
    # adding IDCTs keeps shrinking the makespan until balance, then stops
    assert results[1]["makespan_ms"] > results[2]["makespan_ms"] > results[3]["makespan_ms"]
    gain_past_3 = results[3]["makespan_ms"] / results[5]["makespan_ms"]
    assert gain_past_3 < 1.15, gain_past_3
