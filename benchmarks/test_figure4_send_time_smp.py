"""Figure 4 -- ``send`` execution time vs message size on the SMP.

Paper: send time grows almost linearly from ~0 at tiny messages to
~330 us at 125 kB ("the time of executing a send operation mainly
depends on the size of the message on a SMP platform").

We sweep the same axis, measure through the middleware observation level
(exactly how the paper got the numbers) and check linearity by least
squares: R^2 > 0.99 and an intercept that is negligible at 125 kB.
"""

import numpy as np

from repro.core import Application, CONTROL, MIDDLEWARE_LEVEL
from repro.metrics import Table
from repro.runtime import SmpSimRuntime

from benchmarks.conftest import save_result

SIZES_KB = (1, 25, 50, 75, 100, 125)
MESSAGES_PER_SIZE = 40
PAPER_SLOPE_NS_PER_BYTE = 2.64  # ~330 us / 125 kB


def send_sweep_app(size_bytes, n_messages):
    app = Application(f"fig4-{size_bytes}")

    def sender(ctx):
        payload = bytes(size_bytes)
        for _ in range(n_messages):
            yield from ctx.send("out", payload)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def receiver(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return

    # Both components on node 0 (cores 0 and 1): the local-copy cost the
    # paper's single-process measurement reflects.
    app.create("sender", behavior=sender, requires=["out"], core=0)
    app.create("receiver", behavior=receiver, provides=["in"], core=1)
    app.connect("sender", "out", "receiver", "in")
    app.attach_observer(targets=["sender"])
    return app


def mean_send_us(size_kb):
    app = send_sweep_app(size_kb * 1024, MESSAGES_PER_SIZE)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect(plan=[("sender", MIDDLEWARE_LEVEL)])
    rt.stop()
    return reports[("sender", MIDDLEWARE_LEVEL)]["send"]["mean_ns"] / 1_000


def run_sweep():
    return {kb: mean_send_us(kb) for kb in SIZES_KB}


def test_figure4(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["Message size (kB)", "send time (us)", "paper-model (us)"],
        title="Figure 4: send primitive execution time vs message size (16-core SMP sim)",
    )
    for kb, us in series.items():
        table.add_row([kb, round(us, 2), round(kb * 1024 * PAPER_SLOPE_NS_PER_BYTE / 1000, 1)])
    from repro.metrics.asciichart import render_xy

    chart = render_xy(
        list(SIZES_KB),
        {"measured": [series[kb] for kb in SIZES_KB]},
        width=62,
        height=14,
        x_label="Message size (kB)",
        y_label="Time (us)      Architecture: 16-core SMP",
    )
    save_result("figure4_send_time_smp", table.render() + "\n\n" + chart)

    sizes = np.array([kb * 1024 for kb in SIZES_KB], dtype=float)
    times = np.array([series[kb] * 1000 for kb in SIZES_KB])  # ns
    slope, intercept = np.polyfit(sizes, times, 1)
    fitted = slope * sizes + intercept
    ss_res = float(((times - fitted) ** 2).sum())
    ss_tot = float(((times - times.mean()) ** 2).sum())
    r2 = 1 - ss_res / ss_tot
    assert r2 > 0.99, f"send time is not linear in size (R^2={r2:.4f})"
    # slope close to the paper's ~2.64 ns/byte
    assert 0.7 * PAPER_SLOPE_NS_PER_BYTE < slope < 1.3 * PAPER_SLOPE_NS_PER_BYTE, slope
    # fixed overhead is negligible at the top of the sweep
    assert intercept < 0.1 * times[-1]
    # endpoint lands near the paper's ~330 us at 125 kB
    assert 250 < series[125] < 420
