"""Table 3 -- MJPEG task time and memory on the STi7200 / OS21.

Paper (578 images, 3 CPUs: ST40 Fetch-Reorder + 2x ST231 IDCT):

    Component       Time (s)   Mem (kB)
    Fetch-Reorder      1 173        110
    IDCTx                 95         85

Shape claims: (1) the general-purpose ST40 runs the merged Fetch-Reorder
~10x longer than an ST231 runs an IDCT task; (2) times are ``task_time``
CPU times, so the IDCT figure is far below the pipeline makespan;
(3) memory is exactly 60 kB task data + 25 kB per distributed object;
(4) the OS21 IDCT is more than an order of magnitude slower than the
Linux IDCT (the paper's 4 s vs ~100 s discussion).
"""

import pytest

from repro.core import OS_LEVEL
from repro.metrics import Table
from repro.mjpeg.components import build_smp_assembly, build_sti7200_assembly
from repro.runtime import SmpSimRuntime, Sti7200SimRuntime

from benchmarks.conftest import N_SMALL, SCALE, save_result

PAPER_S = {"Fetch-Reorder": 1_173, "IDCT_1": 95, "IDCT_2": 95}
PAPER_MEM_KB = {"Fetch-Reorder": 110, "IDCT_1": 85, "IDCT_2": 85}


def run_sti(stream):
    app = build_sti7200_assembly(stream, use_stored_coefficients=True)
    rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    return rt, {n: reports[(n, OS_LEVEL)] for n in PAPER_S}


def test_table3(benchmark, small_stream):
    rt, os_reports = benchmark.pedantic(run_sti, args=(small_stream,), rounds=1, iterations=1)

    table = Table(
        ["Component", "Time (s)", "Mem (kB)", "paper Time/scale (s)", "paper Mem (kB)"],
        title=f"Table 3: MJPEG task time and memory (STi7200 sim, {N_SMALL} images)",
    )
    for name in PAPER_S:
        table.add_row(
            [
                name,
                round(os_reports[name]["exec_time_us"] / 1e6, 1),
                os_reports[name]["memory_kb"],
                round(PAPER_S[name] / SCALE, 1),
                PAPER_MEM_KB[name],
            ]
        )
    save_result("table3_os21_exec_mem", table.render())

    fr_s = os_reports["Fetch-Reorder"]["exec_time_us"] / 1e6
    idct_s = os_reports["IDCT_1"]["exec_time_us"] / 1e6

    # (1) the ST40 bottleneck ratio
    assert 6 < fr_s / idct_s < 20, (fr_s, idct_s)
    # (2) task_time semantics: IDCT CPU time << makespan
    assert os_reports["IDCT_1"]["exec_time_us"] * 1_000 < rt.makespan_ns / 3
    # (3) memory exact
    for name in PAPER_S:
        assert os_reports[name]["memory_kb"] == PAPER_MEM_KB[name]
    # (4) absolute scale sanity vs the paper's 1 173 s / 95 s at 578 images
    assert fr_s == pytest.approx(PAPER_S["Fetch-Reorder"] / SCALE, rel=0.30)
    assert idct_s == pytest.approx(PAPER_S["IDCT_1"] / SCALE, rel=0.30)


def test_table3_vs_linux_idct(benchmark, small_stream):
    """The paper's cross-platform observation: the OS21 IDCT component
    takes ~25x the Linux IDCT component's time (~4 s vs ~100 s)."""

    def both():
        app = build_smp_assembly(small_stream, use_stored_coefficients=True)
        rt = SmpSimRuntime()
        rt.run(app)
        linux_reports = rt.collect()
        rt.stop()
        _, sti_reports = run_sti(small_stream)
        return (
            linux_reports[("IDCT_1", OS_LEVEL)]["cpu_time_us"],
            sti_reports["IDCT_1"]["exec_time_us"],
        )

    linux_us, os21_us = benchmark.pedantic(both, rounds=1, iterations=1)
    table = Table(
        ["Platform", "IDCT CPU time (s)"],
        title="IDCT component: Linux SMP vs OS21 (paper: ~4 s vs ~100 s at 578 images)",
    )
    table.add_row(["Linux SMP sim", round(linux_us / 1e6, 2)])
    table.add_row(["OS21 STi7200 sim", round(os21_us / 1e6, 2)])
    save_result("table3_linux_vs_os21_idct", table.render())
    assert 12 < os21_us / linux_us < 50, (linux_us, os21_us)
