"""Shared benchmark configuration and helpers.

Scale: by default the paper's 578/3000-image workloads run at 1/10 scale
(58/300 images) so the whole suite finishes in minutes; set
``REPRO_FULL=1`` to reproduce at full scale.  Every bench prints the
regenerated table/figure and writes it under ``benchmarks/results/``.

Absolute times come from a calibrated model, so the assertions check the
*shape* claims of the paper (balance, linearity, ratios, ordering, exact
counts); EXPERIMENTS.md records paper-vs-measured side by side.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.mjpeg import generate_stream

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_FULL", "0") == "1"

#: Paper workloads and the default scaled-down equivalents.
N_SMALL = 578 if FULL_SCALE else 58
N_LARGE = 3000 if FULL_SCALE else 300
SCALE = 1.0 if FULL_SCALE else 10.0


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


_STREAMS = {}


def cached_stream(n_images: int, quality: int = 75, seed: int = 0):
    """Streams are expensive to encode; share them across benches."""
    key = (n_images, quality, seed)
    if key not in _STREAMS:
        _STREAMS[key] = generate_stream(n_images, 96, 96, quality=quality, seed=seed)
    return _STREAMS[key]


@pytest.fixture(scope="session")
def small_stream():
    """The '578-image' workload (scaled unless REPRO_FULL=1)."""
    return cached_stream(N_SMALL)


@pytest.fixture(scope="session")
def large_stream():
    """The '3000-image' workload (scaled unless REPRO_FULL=1)."""
    return cached_stream(N_LARGE)
