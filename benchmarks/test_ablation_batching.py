"""Ablation A3 -- message-count vs message-size trade-off.

Paper section 5.4: "we can force the Fetch-Dispatch component to send
different number of messages, according to the message size, in order to
balance the EMBera send execution time between the components."

We sweep the Fetch partitioning (batches per image) on the STi7200 model
and report, per configuration, the total send time spent by the
Fetch-Reorder component (on the slow ST40) and the pipeline makespan.
Fewer, larger messages amortize the fixed per-message cost until the
50 kB bounce knee reverses the gain -- the non-monotonicity the paper's
suggestion exploits.
"""

import numpy as np

from repro.core import MIDDLEWARE_LEVEL, OS_LEVEL
from repro.metrics import Table
from repro.mjpeg.components import build_sti7200_assembly
from repro.mjpeg.stream import generate_stream
from repro.runtime import Sti7200SimRuntime

from benchmarks.conftest import save_result

N_IMAGES = 10
#: 48x48 blocks per frame = 576 blocks; sweep the partitioning widely.
BATCH_SWEEP = (2, 6, 18, 72)


def run_config(stream, batches_per_image):
    app = build_sti7200_assembly(stream, use_stored_coefficients=True)
    fr = app.components["Fetch-Reorder"]
    fr.batches_per_image = batches_per_image
    for i in (1, 2):
        app.components[f"IDCT_{i}"].place(object_bytes=512 * 1024)
    fr.place(object_bytes=512 * 1024)
    rt = Sti7200SimRuntime()
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    send = reports[("Fetch-Reorder", MIDDLEWARE_LEVEL)]["send"]
    return {
        "makespan_ms": rt.makespan_ns / 1e6,
        "sends": send["count"],
        "send_total_ms": send["total_ns"] / 1e6,
        "send_mean_us": send["mean_ns"] / 1e3,
        "fr_task_s": reports[("Fetch-Reorder", OS_LEVEL)]["exec_time_us"] / 1e6,
    }


def run_sweep():
    # Larger frames (192x192 -> 576 blocks) make the batching axis wide:
    # 2 batches/image -> ~290 kB messages (over the knee), 72 -> ~8 kB.
    stream = generate_stream(N_IMAGES, 192, 192, quality=75, seed=3)
    return {b: run_config(stream, b) for b in BATCH_SWEEP}


def test_batching_tradeoff(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["Batches/image", "Msgs sent", "Mean send (us)", "Total FR send (ms)", "Makespan (ms)"],
        title="Ablation A3: Fetch partitioning on STi7200 (message count vs size)",
    )
    for b, r in results.items():
        table.add_row(
            [b, r["sends"], round(r["send_mean_us"], 1), round(r["send_total_ms"], 1),
             round(r["makespan_ms"], 1)]
        )
    save_result("ablation_batching", table.render())

    # more batches -> more, smaller messages
    sends = [results[b]["sends"] for b in BATCH_SWEEP]
    assert sends == sorted(sends)
    means = [results[b]["send_mean_us"] for b in BATCH_SWEEP]
    assert means == sorted(means, reverse=True)

    # the knee makes total send cost non-monotone: the coarsest batching
    # (messages far beyond 50 kB) pays the bounce penalty, so some finer
    # partitioning beats it -- the paper's tuning opportunity.
    total = {b: results[b]["send_total_ms"] for b in BATCH_SWEEP}
    assert min(total[6], total[18]) < total[2], total
