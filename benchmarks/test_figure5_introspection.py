"""Figure 5 -- interface listing of the IDCT_1 component.

Paper output:

    Interfaces component [IDCT_1]
    ----------------------------
    [Interface] [Type]
    introspection provided
    _fetchIdct1 provided
    introspection required
    idctReorder required

Regenerated here through the application-level observation report of a
*deployed* assembly (structure travels through the observation message
path, not via direct object access).
"""

from repro.core import APPLICATION_LEVEL, format_interfaces
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime

from benchmarks.conftest import cached_stream, save_result

PAPER_LISTING = """Interfaces component [IDCT_1]
----------------------------
[Interface] [Type]
introspection provided
_fetchIdct1 provided
introspection required
idctReorder required"""


def run_and_introspect():
    stream = cached_stream(4)
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    rt = SmpSimRuntime()
    rt.run(app)
    reports = rt.collect(plan=[("IDCT_1", APPLICATION_LEVEL)])
    rt.stop()
    structure = reports[("IDCT_1", APPLICATION_LEVEL)]["structure"]
    listing = format_interfaces(app.components["IDCT_1"])
    return structure, listing


def test_figure5(benchmark):
    structure, listing = benchmark.pedantic(run_and_introspect, rounds=1, iterations=1)
    save_result("figure5_introspection", listing)

    assert listing == PAPER_LISTING
    # the observation-message path reports the same structure
    assert structure == [
        ("introspection", "provided"),
        ("_fetchIdct1", "provided"),
        ("introspection", "required"),
        ("idctReorder", "required"),
    ]
