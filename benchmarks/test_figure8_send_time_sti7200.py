"""Figure 8 -- EMBera ``send`` time vs message size on the STi7200.

Paper: two series over {0..200} kB message sizes.  The Fetch-Reorder
component on the general-purpose ST40 is consistently slower than an
IDCT component on an ST231 accelerator ("the STi7200 platform ...
favors the ST231 accelerators in memory operations"), both are linear
below 50 kB, and "over 50 kB, the send function decreases its
performance" -- the transfer-buffer knee.
"""

import numpy as np

from repro.core import Application, CONTROL, MIDDLEWARE_LEVEL
from repro.metrics import Table
from repro.runtime import Sti7200SimRuntime

from benchmarks.conftest import save_result

SIZES_KB = (10, 25, 50, 100, 200)
MESSAGES_PER_SIZE = 20


def sweep_app(size_bytes, sender_cpu):
    app = Application(f"fig8-{size_bytes}-{sender_cpu}")

    def sender(ctx):
        payload = bytes(size_bytes)
        for _ in range(MESSAGES_PER_SIZE):
            yield from ctx.send("out", payload)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def receiver(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return

    receiver_cpu = 3 if sender_cpu != 3 else 4
    app.create("sender", behavior=sender, requires=["out"], cpu=sender_cpu)
    app.create(
        "receiver", behavior=receiver, provides=["in"],
        cpu=receiver_cpu, object_bytes=max(size_bytes + 4096, 25 * 1024),
    )
    app.connect("sender", "out", "receiver", "in")
    app.attach_observer(targets=["sender"])
    return app


def mean_send_ms(size_kb, sender_cpu):
    rt = Sti7200SimRuntime()
    rt.run(sweep_app(size_kb * 1024, sender_cpu))
    reports = rt.collect(plan=[("sender", MIDDLEWARE_LEVEL)])
    rt.stop()
    return reports[("sender", MIDDLEWARE_LEVEL)]["send"]["mean_ns"] / 1e6


def run_sweep():
    return {
        "Fetch-Reorder(ST40)": {kb: mean_send_ms(kb, sender_cpu=0) for kb in SIZES_KB},
        "IDCT(ST231)": {kb: mean_send_ms(kb, sender_cpu=1) for kb in SIZES_KB},
    }


def marginal_slope(series, lo_kb, hi_kb):
    """ms per kB between two sweep points."""
    return (series[hi_kb] - series[lo_kb]) / (hi_kb - lo_kb)


def test_figure8(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["Message size (kB)", "Fetch-Reorder ST40 (ms)", "IDCT ST231 (ms)"],
        title="Figure 8: EMBera send execution time (STi7200 sim)",
    )
    for kb in SIZES_KB:
        table.add_row(
            [kb, round(series["Fetch-Reorder(ST40)"][kb], 2), round(series["IDCT(ST231)"][kb], 2)]
        )
    from repro.metrics.asciichart import render_xy

    chart = render_xy(
        list(SIZES_KB),
        {name: [vals[kb] for kb in SIZES_KB] for name, vals in series.items()},
        width=62,
        height=14,
        x_label="Message size (kB)",
        y_label="Time (ms)      Architecture: STi7200",
    )
    save_result("figure8_send_time_sti7200", table.render() + "\n\n" + chart)

    st40 = series["Fetch-Reorder(ST40)"]
    st231 = series["IDCT(ST231)"]

    # ST40 above ST231 at every size (Figure 8 ordering)
    for kb in SIZES_KB:
        assert st40[kb] > 1.3 * st231[kb], (kb, st40[kb], st231[kb])

    # linear below the knee: slope 10->25 equals slope 25->50 within 10%
    for s in (st40, st231):
        below_a = marginal_slope(s, 10, 25)
        below_b = marginal_slope(s, 25, 50)
        assert abs(below_a - below_b) / below_b < 0.1
        # degraded above 50 kB: marginal cost jumps by the bounce penalty
        above = marginal_slope(s, 100, 200)
        assert above > 1.4 * below_b, (above, below_b)

    # absolute scale: paper shows ~tens of ms at 200 kB
    assert 20 < st40[200] < 60
    assert 5 < st231[200] < 40
