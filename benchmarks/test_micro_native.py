"""Native microbenchmarks of the hot codec and middleware paths.

These are conventional pytest-benchmark timings (host wall time) that
make regressions in the numpy hot paths visible -- the profiling-first
discipline of the hpc-parallel guides.
"""

import numpy as np
import pytest

from repro.core import Application, CONTROL
from repro.mjpeg.dct import fdct_blocks, idct_blocks
from repro.mjpeg.decoder import decode_frame_bits
from repro.mjpeg.encoder import encode_image
from repro.mjpeg.stream import synthetic_frame
from repro.runtime import NativeRuntime

N_BLOCKS = 4096


@pytest.fixture(scope="module")
def coef_blocks():
    rng = np.random.default_rng(0)
    return rng.normal(0, 40, (N_BLOCKS, 8, 8))


def test_bench_idct_blocks(benchmark, coef_blocks):
    """Vectorised inverse DCT throughput (blocks/s in the extra info)."""
    result = benchmark(idct_blocks, coef_blocks)
    assert result.shape == (N_BLOCKS, 8, 8)
    benchmark.extra_info["blocks_per_call"] = N_BLOCKS


def test_bench_fdct_blocks(benchmark, coef_blocks):
    result = benchmark(fdct_blocks, coef_blocks)
    assert result.shape == (N_BLOCKS, 8, 8)


def test_bench_huffman_decode(benchmark):
    """The sequential entropy-decode path (the Fetch stage bottleneck)."""
    frame = encode_image(synthetic_frame(0, 96, 96, np.random.default_rng(1)), quality=75)
    zz = benchmark(decode_frame_bits, frame.payload, frame.n_blocks)
    assert zz.shape == (frame.n_blocks, 64)
    benchmark.extra_info["payload_bits"] = frame.n_bits


def test_bench_encode_image(benchmark):
    img = synthetic_frame(0, 96, 96, np.random.default_rng(2))
    frame = benchmark(encode_image, img, 75)
    assert frame.n_blocks == 144


def test_bench_native_send_receive_roundtrip(benchmark):
    """End-to-end mailbox latency through real threads, per message."""
    N = 200

    def run_once():
        app = Application("bench")

        def producer(ctx):
            payload = bytes(1024)
            for _ in range(N):
                yield from ctx.send("out", payload)
            yield from ctx.send("out", None, kind=CONTROL, tag="eos")

        def consumer(ctx):
            while True:
                msg = yield from ctx.receive("in")
                if msg.kind == CONTROL:
                    return

        app.create("p", behavior=producer, requires=["out"])
        app.create("c", behavior=consumer, provides=["in"])
        app.connect("p", "out", "c", "in")
        rt = NativeRuntime()
        rt.run(app)
        rt.stop()

    benchmark.pedantic(run_once, rounds=3, iterations=1)
    benchmark.extra_info["messages_per_round"] = N


def test_bench_sim_kernel_event_throughput(benchmark):
    """Raw discrete-event throughput: the budget everything else spends."""
    from repro.sim import Kernel

    N = 50_000

    def run_events():
        k = Kernel()
        for i in range(N):
            k.schedule(i, lambda: None)
        k.run()
        return k.events_executed

    executed = benchmark(run_events)
    assert executed == N
    benchmark.extra_info["events_per_round"] = N


def test_bench_sim_pipeline_message_rate(benchmark):
    """Messages/second through the full simulated stack (OS + mailbox +
    observation interposition) -- the macro cost of one EMBera hop."""
    from repro.core import Application, CONTROL
    from repro.runtime import SmpSimRuntime

    N = 2_000

    def run_pipeline():
        app = Application("rate")

        def producer(ctx):
            for _ in range(N):
                yield from ctx.send("out", b"x" * 64)
            yield from ctx.send("out", None, kind=CONTROL, tag="eos")

        def consumer(ctx):
            while True:
                msg = yield from ctx.receive("in")
                if msg.kind == CONTROL:
                    return

        app.create("p", behavior=producer, requires=["out"])
        app.create("c", behavior=consumer, provides=["in"])
        app.connect("p", "out", "c", "in")
        app.attach_observer()
        rt = SmpSimRuntime()
        rt.run(app)
        rt.stop()

    benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    benchmark.extra_info["messages_per_round"] = N
