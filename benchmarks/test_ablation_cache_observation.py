"""Ablation A8 -- the cache-miss observation extension at work.

The paper's conclusion names "cache misses" as the next observation
function to add.  Here the per-core cache models are enabled on the SMP
platform and the MJPEG run is observed at the OS level: per-component
miss counts and rates, and their response to the message size (larger
messages stream more data through the mailboxes -> more compulsory
misses per message).
"""

from repro.core import OS_LEVEL
from repro.hw import make_smp16
from repro.metrics import Table
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime

from benchmarks.conftest import cached_stream, save_result

N_IMAGES = 24
COMPONENTS = ("Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder")


def run_observed():
    stream = cached_stream(N_IMAGES)
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    rt = SmpSimRuntime(platform=make_smp16(with_caches=True))
    rt.run(app)
    reports = rt.collect()
    rt.stop()
    return {name: reports[(name, OS_LEVEL)]["cache"] for name in COMPONENTS}


def test_cache_observation(benchmark):
    stats = benchmark.pedantic(run_observed, rounds=1, iterations=1)

    table = Table(
        ["Component", "accesses", "misses", "miss rate"],
        title=f"Ablation A8: per-component cache behaviour (MJPEG, {N_IMAGES} images)",
    )
    for name in COMPONENTS:
        s = stats[name]
        table.add_row(
            [name, s["hits"] + s["misses"], s["misses"], round(s["miss_rate"], 3)]
        )
    save_result("ablation_cache_observation", table.render())

    for name, s in stats.items():
        assert s["misses"] > 0, name
        assert 0.0 < s["miss_rate"] <= 1.0, name
    # Fetch streams coefficient batches into ever-advancing mailbox
    # offsets: almost pure compulsory misses.  The IDCTs repeatedly read
    # the same small inbound window, so locality keeps their rate low.
    assert stats["Fetch"]["miss_rate"] > 0.8
    for i in (1, 2, 3):
        assert stats[f"IDCT_{i}"]["miss_rate"] < 0.5 * stats["Fetch"]["miss_rate"]
