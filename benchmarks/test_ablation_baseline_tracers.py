"""Ablation A2 -- EMBera observation vs platform-level tracing.

Quantifies the paper's related-work argument (section 2): low-level SoC
tools (KPTrace-style) record kernel events with "no mapping between
application operations and lower-level observation data".  On the same
MJPEG run we compare:

- EMBera: a fixed number of per-component summarized reports, with
  structure and message counts (application-meaningful);
- KPTrace baseline: raw scheduler events over *threads* (components and
  infrastructure indistinguishable);
- full event trace: per-operation records -- detailed but voluminous.
"""

from repro.baselines import KPTrace
from repro.core import APPLICATION_LEVEL
from repro.metrics import Table
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime
from repro.trace.tracer import enable_tracing

from benchmarks.conftest import cached_stream, save_result

N_IMAGES = 24


def run_all():
    stream = cached_stream(N_IMAGES)
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    rt = SmpSimRuntime()
    rt.deploy(app)
    kp = KPTrace(rt.system.engine).install()
    buffer = enable_tracing(rt)
    rt.start()
    rt.wait()
    reports = rt.collect()
    rt.stop()
    kp.uninstall()
    return reports, kp, buffer


def test_baseline_tracers(benchmark):
    reports, kp, buffer = benchmark.pedantic(run_all, rounds=1, iterations=1)

    n_messages = reports[("Fetch", APPLICATION_LEVEL)]["sends"]
    table = Table(
        ["Observation approach", "Records", "Knows components?", "Knows messages?"],
        title=f"Ablation A2: observation approaches on the same run ({N_IMAGES} images)",
    )
    table.add_row(["EMBera summarized reports", len(reports), "yes", f"yes ({n_messages} counted)"])
    table.add_row(["KPTrace-style kernel events", kp.event_count(), "no (threads)", "no"])
    table.add_row(["EMBera full event trace", len(buffer), "yes", "yes (per-op)"])
    save_result("ablation_baseline_tracers", table.render())

    # EMBera's summary is constant-size; the detailed views scale with work.
    assert len(reports) == 15  # 5 components x 3 levels
    assert len(buffer) > 10 * len(reports)
    # the kernel view contains infrastructure threads the app view hides
    assert any(".obsvc" in t for t in kp.threads_seen())
    # per-thread CPU times reconstructed from kernel events agree with the
    # OS-level observation report (which truncates to microseconds)
    from repro.core import OS_LEVEL

    cpu = kp.cpu_time_by_thread()
    for name in ("Fetch", "IDCT_1", "Reorder"):
        assert cpu[name] // 1_000 == reports[(name, OS_LEVEL)]["cpu_time_us"]
