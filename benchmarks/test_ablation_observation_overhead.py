"""Ablation A1 -- cost of observation.

The paper's central claim is observation "without modifying application
code"; the implied cost question is what the observation machinery adds.
Measured three ways:

1. simulated virtual time with vs without an observer attached -- must be
   *identical*: probes/counters are host-side bookkeeping, and the
   observation channel only costs when queried;
2. simulated virtual time with full event tracing enabled -- also
   identical (tracing is observation infrastructure);
3. native runtime wall time with vs without an observer -- real Python
   overhead of the interposition, reported as a percentage.
"""

import time

from repro.metrics import Table
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import NativeRuntime, SmpSimRuntime
from repro.trace.tracer import enable_tracing

from benchmarks.conftest import cached_stream, save_result

N_IMAGES = 24
NATIVE_REPEATS = 3


def sim_makespan(stream, with_observer, with_tracing=False):
    app = build_smp_assembly(stream, use_stored_coefficients=True, with_observer=with_observer)
    rt = SmpSimRuntime()
    rt.deploy(app)
    if with_tracing:
        enable_tracing(rt)
    rt.start()
    rt.wait()
    rt.stop()
    return rt.makespan_ns


def native_wall_s(stream, with_observer):
    best = float("inf")
    for _ in range(NATIVE_REPEATS):
        app = build_smp_assembly(stream, with_observer=with_observer)
        rt = NativeRuntime()
        t0 = time.perf_counter()
        rt.run(app)
        best = min(best, time.perf_counter() - t0)
        rt.stop()
    return best


def run_all():
    stream = cached_stream(N_IMAGES)
    return {
        "sim_plain": sim_makespan(stream, with_observer=False),
        "sim_observed": sim_makespan(stream, with_observer=True),
        "sim_traced": sim_makespan(stream, with_observer=True, with_tracing=True),
        "native_plain_s": native_wall_s(stream, with_observer=False),
        "native_observed_s": native_wall_s(stream, with_observer=True),
    }


def test_observation_overhead(benchmark):
    r = benchmark.pedantic(run_all, rounds=1, iterations=1)

    native_overhead_pct = 100 * (r["native_observed_s"] / r["native_plain_s"] - 1)
    table = Table(
        ["Configuration", "Simulated time (ms)", "Native wall (ms)"],
        title=f"Ablation A1: observation overhead (MJPEG, {N_IMAGES} images)",
    )
    table.add_row(["unobserved", round(r["sim_plain"] / 1e6, 2), round(r["native_plain_s"] * 1e3, 1)])
    table.add_row(["observer attached", round(r["sim_observed"] / 1e6, 2), round(r["native_observed_s"] * 1e3, 1)])
    table.add_row(["observer + event trace", round(r["sim_traced"] / 1e6, 2), "-"])
    save_result(
        "ablation_observation_overhead",
        table.render() + f"\nnative interposition overhead: {native_overhead_pct:+.1f}%",
    )

    # Virtual time is bit-identical with and without observation.
    assert r["sim_plain"] == r["sim_observed"] == r["sim_traced"]
    # Native overhead stays modest (counters + timestamps per op).
    assert native_overhead_pct < 60, native_overhead_pct
