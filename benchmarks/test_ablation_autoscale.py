"""Ablation A7 -- observation-driven dynamic reconfiguration.

Closes the loop the paper's section 4.4 leaves open: when the input makes
the IDCT stage the bottleneck, a controller watching the middleware-level
queue-depth observation adds IDCT components *mid-run* (component
creation + live interconnection).  Compared against the static 1-IDCT
deployment and the statically balanced 3-IDCT deployment.
"""

from repro.core import MIDDLEWARE_LEVEL
from repro.metrics import Table
from repro.mjpeg.components import IdctComponent, build_smp_assembly
from repro.runtime import SmpSimRuntime
from repro.sim.process import Timeout

from benchmarks.conftest import cached_stream, save_result

N_IMAGES = 24
MAX_IDCT = 4


def run_static(stream, n_idct):
    app = build_smp_assembly(stream, n_idct=n_idct, use_stored_coefficients=True)
    rt = SmpSimRuntime()
    rt.run(app)
    rt.stop()
    return {"makespan_ms": rt.makespan_ns / 1e6, "idcts": n_idct}


def run_autoscaled(stream):
    app = build_smp_assembly(stream, n_idct=1, use_stored_coefficients=True)
    app.components["Reorder"].n_upstream = None
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    added = []

    def controller(runtime, ctx):
        observer = runtime.app.observer
        next_index = 2
        while next_index <= MAX_IDCT:
            yield Timeout(15_000_000)
            idcts = [t for t in observer.targets if t.startswith("IDCT")]
            reports = yield from observer.collect(ctx, [(t, MIDDLEWARE_LEVEL) for t in idcts])
            backlog = sum(
                sum(reports[(t, MIDDLEWARE_LEVEL)]["queue_depths"].values()) for t in idcts
            )
            if not runtime.containers["Fetch"].handle.alive and backlog == 0:
                return
            if backlog < 12 * len(idcts):
                continue
            comp = IdctComponent(f"IDCT_{next_index}", next_index)
            runtime.add_component(
                comp,
                connections=[(comp, "idctReorder", "Reorder", "idctReorder")],
                observe=True,
            )
            runtime.connect_live("Fetch", f"fetchIdct{next_index}", comp, f"_fetchIdct{next_index}")
            added.append(comp.name)
            next_index += 1

    rt.spawn_controller(controller)
    rt.wait()
    rt.stop()
    return {"makespan_ms": rt.makespan_ns / 1e6, "idcts": 1 + len(added)}


def run_all():
    stream = cached_stream(N_IMAGES)
    return {
        "static 1 IDCT": run_static(stream, 1),
        "static 3 IDCT": run_static(stream, 3),
        "auto-scaled (starts at 1)": run_autoscaled(stream),
    }


def test_autoscale(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        ["Deployment", "Final IDCTs", "Makespan (ms)"],
        title=f"Ablation A7: observation-driven IDCT auto-scaling ({N_IMAGES} images)",
    )
    for label, r in results.items():
        table.add_row([label, r["idcts"], round(r["makespan_ms"], 1)])
    save_result("ablation_autoscale", table.render())

    static1 = results["static 1 IDCT"]["makespan_ms"]
    static3 = results["static 3 IDCT"]["makespan_ms"]
    scaled = results["auto-scaled (starts at 1)"]["makespan_ms"]
    # the controller actually scaled out
    assert results["auto-scaled (starts at 1)"]["idcts"] >= 3
    # autoscaling recovers most of the static-3 advantage
    assert scaled < 0.7 * static1
    assert scaled < 1.5 * static3
