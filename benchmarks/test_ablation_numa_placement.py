"""Ablation A4 -- NUMA placement sensitivity on the 16-core SMP.

The paper describes the platform's NUMA organisation (section 4) but
pins nothing; this ablation shows why placement matters for the Figure 4
curve: the same send pays 1 + 0.2/hop per byte across the 3-cube, so the
worst placement (3 hops) costs ~60% more than node-local communication.
"""

from repro.core import Application, CONTROL, MIDDLEWARE_LEVEL
from repro.metrics import Table
from repro.runtime import SmpSimRuntime

from benchmarks.conftest import save_result

MESSAGE_KB = 100
N_MESSAGES = 30
#: (sender core, receiver core) -> hop distance on the 3-cube of nodes.
PLACEMENTS = {
    "same node (0 hops)": (0, 1),
    "neighbour node (1 hop)": (0, 2),
    "2 hops": (0, 6),
    "opposite corner (3 hops)": (0, 14),
}


def app_for(sender_core, receiver_core):
    app = Application(f"numa-{sender_core}-{receiver_core}")

    def sender(ctx):
        payload = bytes(MESSAGE_KB * 1024)
        for _ in range(N_MESSAGES):
            yield from ctx.send("out", payload)
        yield from ctx.send("out", None, kind=CONTROL, tag="eos")

    def receiver(ctx):
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                return

    app.create("sender", behavior=sender, requires=["out"], core=sender_core)
    app.create("receiver", behavior=receiver, provides=["in"], core=receiver_core)
    app.connect("sender", "out", "receiver", "in")
    app.attach_observer(targets=["sender"])
    return app


def run_sweep():
    out = {}
    for label, (s, r) in PLACEMENTS.items():
        rt = SmpSimRuntime()
        rt.run(app_for(s, r))
        reports = rt.collect(plan=[("sender", MIDDLEWARE_LEVEL)])
        rt.stop()
        out[label] = reports[("sender", MIDDLEWARE_LEVEL)]["send"]["mean_ns"] / 1e3
    return out


def test_numa_placement(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["Placement", f"send {MESSAGE_KB}kB (us)"],
        title="Ablation A4: NUMA distance vs send time (16-core SMP sim)",
    )
    for label, us in results.items():
        table.add_row([label, round(us, 1)])
    save_result("ablation_numa_placement", table.render())

    local = results["same node (0 hops)"]
    one = results["neighbour node (1 hop)"]
    three = results["opposite corner (3 hops)"]
    assert local < one < three
    # affine hop model: 3 hops ~ 1.6x local
    assert 1.45 < three / local < 1.75, three / local
