#!/usr/bin/env python3
"""Quickstart: build, run and observe a two-component EMBera application.

Demonstrates the whole public API surface in ~60 lines:

- components with provided/required interfaces and a behaviour generator,
- the application assembly (create / connect / attach_observer),
- running on the native runtime (real threads),
- the three observation levels of the paper (OS / middleware / application),
- the Figure-5-style interface listing.

Run:  python examples/quickstart.py
"""

from repro.core import (
    APPLICATION_LEVEL,
    Application,
    CONTROL,
    MIDDLEWARE_LEVEL,
    OS_LEVEL,
    format_interfaces,
)
from repro.runtime import NativeRuntime

N_MESSAGES = 200


def producer_behavior(ctx):
    """Send N_MESSAGES 4 kB payloads, then an end-of-stream control."""
    payload = bytes(4096)
    for i in range(N_MESSAGES):
        yield from ctx.send("out", payload, tag=f"msg{i}")
    yield from ctx.send("out", None, kind=CONTROL, tag="eos")


def consumer_behavior(ctx):
    """Drain messages until end-of-stream."""
    count = 0
    while True:
        msg = yield from ctx.receive("in")
        if msg.kind == CONTROL and msg.tag == "eos":
            return count
        count += 1


def main() -> None:
    # 1. assemble: creation, interconnection (the paper's control interface)
    app = Application("quickstart")
    app.create("producer", behavior=producer_behavior, requires=["out"])
    app.create("consumer", behavior=consumer_behavior, provides=["in"])
    app.connect("producer", "out", "consumer", "in")
    observer = app.attach_observer()  # wires the observation interfaces

    # 2. deploy and run on real threads
    runtime = NativeRuntime()
    runtime.run(app)

    # 3. observe -- three levels, gathered over observation messages,
    #    with zero changes to the behaviours above
    reports = runtime.collect()
    runtime.stop()

    print(format_interfaces(app.components["producer"]))
    print()
    for name in ("producer", "consumer"):
        os_r = reports[(name, OS_LEVEL)]
        mw_r = reports[(name, MIDDLEWARE_LEVEL)]
        ap_r = reports[(name, APPLICATION_LEVEL)]
        print(f"[{name}]")
        print(f"  OS level:          exec {os_r['exec_time_us']} us, "
              f"memory {os_r['memory_kb']:.0f} kB "
              f"(stack {os_r['stack_bytes'] // 1024} kB + "
              f"interfaces {os_r['interface_bytes'] // 1024} kB)")
        print(f"  middleware level:  {mw_r['send']['count']} sends "
              f"(mean {mw_r['send']['mean_ns']:.0f} ns), "
              f"{mw_r['receive']['count']} receives "
              f"(mean {mw_r['receive']['mean_ns']:.0f} ns)")
        print(f"  application level: {ap_r['sends']} data sends, "
              f"{ap_r['receives']} data receives, "
              f"{ap_r['bytes_sent']} bytes out")
        print()

    assert reports[("producer", APPLICATION_LEVEL)]["sends"] == N_MESSAGES
    print(f"ok: observed {N_MESSAGES} messages end to end")


if __name__ == "__main__":
    main()
