#!/usr/bin/env python3
"""Event-trace support: the detailed view the paper's conclusion asks for.

Runs the MJPEG decoder with full event tracing enabled, exports the
trace to JSONL, and reconstructs per-component duration summaries and
busy fractions -- turning "summarized information" into "a detailed view
of the application behavior" (paper section 6).

Run:  python examples/trace_timeline.py
"""

import tempfile
from pathlib import Path

from repro.metrics import Table
from repro.mjpeg import generate_stream
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime
from repro.trace import intervals, read_jsonl, summarize_durations, write_jsonl
from repro.trace.analysis import busy_fraction
from repro.trace.tracer import enable_tracing

N_IMAGES = 20


def main() -> None:
    stream = generate_stream(N_IMAGES, 96, 96, quality=75, seed=5)
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    runtime = SmpSimRuntime()
    runtime.deploy(app)
    buffer = enable_tracing(runtime)
    runtime.start()
    runtime.wait()
    runtime.stop()

    events = buffer.events()
    print(f"captured {len(events)} events "
          f"({buffer.dropped} dropped) over "
          f"{runtime.makespan_ns / 1e6:.1f} virtual ms")

    # round-trip through the JSONL writer
    path = Path(tempfile.gettempdir()) / "mjpeg_trace.jsonl"
    write_jsonl(events, path)
    events = read_jsonl(path)
    print(f"trace written to {path}")

    ivals = intervals(events)
    summary = summarize_durations(ivals)

    table = Table(
        ["Component", "Operation", "count", "mean (us)", "total (ms)"],
        title="Per-operation durations reconstructed from the event trace",
    )
    for (component, name), stats in sorted(summary.items()):
        table.add_row(
            [
                component,
                name,
                stats["count"],
                round(stats["mean_ns"] / 1e3, 2),
                round(stats["total_ns"] / 1e6, 2),
            ]
        )
    print()
    print(table.render())

    busy = Table(["Component", "busy fraction"],
                 title="Busy fraction over the run (union of traced intervals)")
    for name in ("Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder"):
        busy.add_row([name, round(busy_fraction(ivals, name, runtime.makespan_ns), 3)])
    print()
    print(busy.render())

    # ASCII Gantt of the run, plus interoperable exports
    from repro.trace import render_gantt, write_chrome_trace, write_paje

    print()
    print(render_gantt(ivals, span_ns=runtime.makespan_ns, width=76,
                       components=["Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder"]))
    chrome = Path(tempfile.gettempdir()) / "mjpeg_trace_chrome.json"
    paje = Path(tempfile.gettempdir()) / "mjpeg_trace.paje"
    write_chrome_trace(events, chrome)
    write_paje(events, paje)
    print(f"\nchrome://tracing export: {chrome}\nPaje export: {paje}")


if __name__ == "__main__":
    main()
