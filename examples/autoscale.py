#!/usr/bin/env python3
"""Observer-in-the-loop adaptation: auto-scaling the IDCT stage.

The paper closes its SMP evaluation with a warning (section 4.4): the
pipeline "is well load-balanced for the JPEG input size but if that size
changes, the execution times could cause a bottleneck on the IDCT
components".  This example closes the loop the paper leaves open: a
controller flow *watches the observation data* while the decoder runs,
detects the IDCT bottleneck, and uses the control interface's dynamic
reconfiguration (component creation + live interconnection, straight
from the Fractal heritage) to add IDCT components until the pipeline is
balanced -- all mid-run, with every frame still decoding bit-identically.

Run:  python examples/autoscale.py
"""

import numpy as np

from repro.core import MIDDLEWARE_LEVEL
from repro.metrics import Table
from repro.mjpeg import decode_image, generate_stream
from repro.mjpeg.components import IdctComponent, build_smp_assembly
from repro.runtime import SmpSimRuntime
from repro.sim.process import Timeout

N_IMAGES = 40
CHECK_EVERY_MS = 20
MAX_IDCT = 5


def run(adaptive: bool) -> tuple:
    stream = generate_stream(N_IMAGES, 96, 96, quality=75, seed=13)
    app = build_smp_assembly(
        stream, n_idct=1, use_stored_coefficients=True, keep_frames=True
    )
    app.components["Reorder"].n_upstream = None  # count upstreams live
    rt = SmpSimRuntime()
    rt.deploy(app)
    rt.start()
    events = []

    if adaptive:

        def controller(runtime, ctx):
            observer = runtime.app.observer
            next_index = 2
            while next_index <= MAX_IDCT:
                yield Timeout(CHECK_EVERY_MS * 1_000_000)
                # Adaptation signal: backlog on the IDCT inbound queues
                # (the middleware-level queue-depth observation).
                idcts = [t for t in observer.targets if t.startswith("IDCT")]
                plan = [(t, MIDDLEWARE_LEVEL) for t in idcts]
                reports = yield from observer.collect(ctx, plan)
                backlog = sum(
                    sum(reports[(t, MIDDLEWARE_LEVEL)]["queue_depths"].values())
                    for t in idcts
                )
                if not runtime.containers["Fetch"].handle.alive and backlog == 0:
                    return  # stream finished and drained
                if backlog < 2 * len(idcts) * 6:  # < ~2 frames of headroom
                    continue
                name = f"IDCT_{next_index}"
                comp = IdctComponent(name, next_index)
                runtime.add_component(
                    comp,
                    connections=[(comp, "idctReorder", "Reorder", "idctReorder")],
                    observe=True,
                )
                runtime.connect_live("Fetch", f"fetchIdct{next_index}", comp, f"_fetchIdct{next_index}")
                events.append((runtime.kernel.now, name, backlog))
                next_index += 1

        rt.spawn_controller(controller)

    rt.wait()
    rt.stop()
    return rt, app, stream, events


def main() -> None:
    static_rt, *_ = run(adaptive=False)
    rt, app, stream, events = run(adaptive=True)

    table = Table(["virtual time (ms)", "action", "IDCT backlog (msgs)"],
                  title="Controller decisions (observation-driven)")
    for t_ns, name, backlog in events:
        table.add_row([round(t_ns / 1e6, 1), f"added {name}", backlog])
    print(table.render())

    # correctness: every frame still decodes bit-identically
    reorder = app.components["Reorder"]
    for rec in stream:
        if rec.index == 0:
            continue
        ref = decode_image(rec.frame.payload, 96, 96, 75)
        assert np.array_equal(reorder.frames[rec.index], ref), f"frame {rec.index}"
    print(f"\nall {N_IMAGES - 1} frames bit-identical to the reference decoder")

    print(f"static 1-IDCT makespan:   {static_rt.makespan_ns / 1e6:8.1f} ms")
    print(f"auto-scaled makespan:     {rt.makespan_ns / 1e6:8.1f} ms "
          f"({static_rt.makespan_ns / rt.makespan_ns:.2f}x faster)")
    assert rt.makespan_ns < static_rt.makespan_ns


if __name__ == "__main__":
    main()
