#!/usr/bin/env python3
"""A second application domain: an audio filter bank.

The paper's first requirement (section 3) is that EMBera "can be used to
observe different types of embedded applications" -- it must be
application-independent.  This example builds an entirely different
workload from the MJPEG case study -- a source streaming audio chunks
through four parallel FIR band-pass filters into a mixer -- deploys it on
a *custom, config-declared* platform (a big.LITTLE-style quad), and uses
the same observation machinery plus the report-analysis helpers to find
the bottleneck.

Run:  python examples/audio_filterbank.py
"""

import numpy as np

from repro.core import Application, CONTROL, OS_LEVEL
from repro.hw.config import platform_from_config
from repro.metrics import Table
from repro.metrics.analysis import summarize
from repro.runtime import SmpSimRuntime

SAMPLE_RATE = 48_000
CHUNK = 2048
N_CHUNKS = 120
BANDS = [(80, 300), (300, 1200), (1200, 4000), (4000, 12000)]

#: A big.LITTLE-style platform declared as data: two fast cores for I/O
#: and mixing, four slow cores for the filter bank.
PLATFORM_CONFIG = {
    "name": "biglittle6",
    "cores": (
        [{"name": f"big{i}", "freq_hz": 2.0e9, "node": 0,
          "cycles": {"fir_tap": 1.0, "memcpy_byte": 3.0, "syscall": 1200}} for i in range(2)]
        + [{"name": f"little{i}", "freq_hz": 0.9e9, "node": 1,
            "cycles": {"fir_tap": 2.2, "memcpy_byte": 6.0, "syscall": 1800}} for i in range(4)]
    ),
    "regions": [
        {"name": "node0", "size_bytes": 1 << 30, "node": 0},
        {"name": "node1", "size_bytes": 1 << 28, "node": 1},
    ],
    "numa": {"distance": [[0, 1], [1, 0]], "hop_penalty": 0.25},
}


def bandpass_taps(lo, hi, n_taps=255):
    """Windowed-sinc band-pass FIR design (pure numpy)."""
    n = np.arange(n_taps) - (n_taps - 1) / 2
    def sinc_lp(fc):
        x = 2 * fc / SAMPLE_RATE
        return x * np.sinc(x * n)
    taps = sinc_lp(hi) - sinc_lp(lo)
    taps *= np.hamming(n_taps)
    return taps / np.abs(taps).sum()


def source_behavior(ctx):
    rng = np.random.default_rng(4)
    t = np.arange(CHUNK) / SAMPLE_RATE
    for i in range(N_CHUNKS):
        chunk = (
            0.5 * np.sin(2 * np.pi * 440 * (t + i * CHUNK / SAMPLE_RATE))
            + 0.3 * np.sin(2 * np.pi * 2500 * (t + i * CHUNK / SAMPLE_RATE))
            + 0.1 * rng.normal(size=CHUNK)
        ).astype(np.float32)
        yield from ctx.compute("memcpy_byte", chunk.nbytes)  # acquisition DMA
        for b in range(len(BANDS)):
            yield from ctx.send(f"band{b}", {"seq": i, "samples": chunk})
    for b in range(len(BANDS)):
        yield from ctx.send(f"band{b}", None, kind=CONTROL, tag="eos")


def make_filter_behavior(lo, hi):
    taps = bandpass_taps(lo, hi)

    def behavior(ctx):
        state = np.zeros(len(taps) - 1, dtype=np.float32)
        while True:
            msg = yield from ctx.receive("in")
            if msg.kind == CONTROL:
                yield from ctx.send("out", None, kind=CONTROL, tag="eos")
                return
            samples = msg.payload["samples"]
            buf = np.concatenate([state, samples])
            filtered = np.convolve(buf, taps, mode="valid").astype(np.float32)
            state = buf[-(len(taps) - 1):]
            yield from ctx.compute("fir_tap", len(taps) * len(samples))
            yield from ctx.send("out", {"seq": msg.payload["seq"], "samples": filtered})

    return behavior


def mixer_behavior(ctx):
    eos = 0
    pending = {}
    mixed_chunks = 0
    while eos < len(BANDS):
        msg = yield from ctx.receive("in")
        if msg.kind == CONTROL:
            eos += 1
            continue
        seq = msg.payload["seq"]
        pending.setdefault(seq, []).append(msg.payload["samples"])
        if len(pending[seq]) == len(BANDS):
            mix = np.sum(pending.pop(seq), axis=0)
            yield from ctx.compute("fir_tap", mix.size)  # gain stage
            yield from ctx.deposit("dac", mix, tag="chunk")
            mixed_chunks += 1
    return mixed_chunks


def main() -> None:
    app = Application("filterbank")
    app.create(
        "source", behavior=source_behavior,
        requires=[f"band{b}" for b in range(len(BANDS))], core=0,
    )
    for b, (lo, hi) in enumerate(BANDS):
        app.create(
            f"filter{b}", behavior=make_filter_behavior(lo, hi),
            provides=["in"], requires=["out"], core=2 + b,  # the little cores
        )
        app.connect("source", f"band{b}", f"filter{b}", "in")
    app.create("mixer", behavior=mixer_behavior, provides=["in", "dac"], core=1)
    for b in range(len(BANDS)):
        app.connect(f"filter{b}", "out", "mixer", "in")
    app.attach_observer()

    runtime = SmpSimRuntime(platform=platform_from_config(PLATFORM_CONFIG))
    runtime.run(app)
    reports = runtime.collect()
    runtime.stop()

    table = Table(["Component", "core", "cpu time (ms)", "sends", "receives"],
                  title=f"Filter bank: {N_CHUNKS} chunks of {CHUNK} samples @ {SAMPLE_RATE} Hz")
    for name in ["source", *[f"filter{b}" for b in range(len(BANDS))], "mixer"]:
        os_r = reports[(name, OS_LEVEL)]
        ap_r = reports[(name, "application")]
        table.add_row([
            name,
            runtime.containers[name].extra["core"],
            round(os_r["cpu_time_us"] / 1e3, 2),
            ap_r["sends"],
            ap_r["receives"],
        ])
    print(table.render())

    s = summarize(reports, makespan_ns=runtime.makespan_ns)
    audio_seconds = N_CHUNKS * CHUNK / SAMPLE_RATE
    print(f"\nbottleneck: {s['bottleneck']} (imbalance {s['imbalance']:.2f})")
    print(f"messages conserved: {s['messages_conserved']}")
    print(f"processed {audio_seconds:.1f}s of audio in "
          f"{runtime.makespan_ns / 1e9:.2f}s simulated "
          f"({audio_seconds / (runtime.makespan_ns / 1e9):.1f}x real time)")
    assert s["messages_conserved"]


if __name__ == "__main__":
    main()
