#!/usr/bin/env python3
"""The paper's SMP experiment in miniature (sections 4.3-4.4).

Generates a synthetic MJPEG stream, runs the componentized decoder
(Fetch -> 3x IDCT -> Reorder) on the simulated 16-core NUMA Linux
platform, verifies every decoded frame against the single-threaded
reference decoder, and prints Table-1 and Table-2 style observations.

Run:  python examples/mjpeg_smp.py [n_images]
"""

import sys

import numpy as np

from repro.core import APPLICATION_LEVEL, OS_LEVEL
from repro.metrics import Table
from repro.mjpeg import decode_image, generate_stream
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime


def main(n_images: int = 30) -> None:
    print(f"encoding a {n_images}-image synthetic MJPEG stream (96x96)...")
    stream = generate_stream(n_images, 96, 96, quality=75, seed=7)

    app = build_smp_assembly(stream, keep_frames=True)
    runtime = SmpSimRuntime()
    print("running Fetch -> 3x IDCT -> Reorder on the 16-core SMP model...")
    runtime.run(app)
    reports = runtime.collect()
    runtime.stop()

    names = ("Fetch", "IDCT_1", "IDCT_2", "IDCT_3", "Reorder")
    t1 = Table(["Component", "Time (us)", "Mem (kB)"],
               title="Components execution time and memory (cf. paper Table 1)")
    for name in names:
        os_r = reports[(name, OS_LEVEL)]
        t1.add_row([name, os_r["exec_time_us"], os_r["memory_kb"]])
    print()
    print(t1.render())

    t2 = Table(["Component", "send", "receive"],
               title="Communication operations performed (cf. paper Table 2)")
    for name in names:
        ap = reports[(name, APPLICATION_LEVEL)]
        t2.add_row([name, ap["sends"], ap["receives"]])
    print()
    print(t2.render())

    # functional check: pipeline output == reference decoder output
    reorder = app.components["Reorder"]
    mismatches = 0
    for record in stream:
        if record.index == 0:
            continue  # priming frame is not dispatched
        ref = decode_image(record.frame.payload, stream.height, stream.width, stream.quality)
        if not np.array_equal(reorder.frames[record.index], ref):
            mismatches += 1
    print()
    print(f"pipeline makespan: {runtime.makespan_ns / 1e9:.3f} simulated seconds")
    print(f"decoded frames checked against reference decoder: "
          f"{n_images - 1 - mismatches}/{n_images - 1} identical")
    if mismatches:
        raise SystemExit("FAILED: pipeline output differs from reference")
    print("ok")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
