#!/usr/bin/env python3
"""On-line observation: watch the decoder's progress while it runs.

The paper's observation interface answers queries *during* execution --
"this observation can provide valuable information for applications
which configuration changes dynamically" (section 4.4).  This example
schedules observation sweeps at several virtual-time instants of a
simulated MJPEG run and prints how the communication counters and busy
times evolve, without perturbing the simulated execution at all.

Run:  python examples/observer_midrun.py
"""

from repro.core import APPLICATION_LEVEL, OS_LEVEL
from repro.metrics import Table
from repro.mjpeg import generate_stream
from repro.mjpeg.components import build_smp_assembly
from repro.runtime import SmpSimRuntime

N_IMAGES = 40
SNAPSHOT_EVERY_MS = 50


def main() -> None:
    stream = generate_stream(N_IMAGES, 96, 96, quality=75, seed=11)
    app = build_smp_assembly(stream, use_stored_coefficients=True)
    runtime = SmpSimRuntime()
    runtime.deploy(app)
    runtime.start()

    # Schedule periodic observation sweeps in virtual time.
    plan = [("Fetch", APPLICATION_LEVEL), ("Reorder", APPLICATION_LEVEL),
            ("IDCT_1", OS_LEVEL)]
    handles = [
        runtime.schedule_collect(ms * 1_000_000, plan=plan)
        for ms in range(SNAPSHOT_EVERY_MS, 6 * SNAPSHOT_EVERY_MS + 1, SNAPSHOT_EVERY_MS)
    ]
    runtime.wait()
    final = runtime.collect(plan=plan)
    runtime.stop()

    table = Table(
        ["virtual time (ms)", "Fetch sends", "Reorder recvs", "IDCT_1 cpu (ms)"],
        title="Observation snapshots during one MJPEG run (no virtual-time cost)",
    )
    for handle in handles:
        t_ns, reports = handle.result
        table.add_row(
            [
                round(t_ns / 1e6, 1),
                reports[("Fetch", APPLICATION_LEVEL)]["sends"],
                reports[("Reorder", APPLICATION_LEVEL)]["receives"],
                round(reports[("IDCT_1", OS_LEVEL)]["cpu_time_us"] / 1e3, 1),
            ]
        )
    table.add_row(
        [
            round(runtime.makespan_ns / 1e6, 1),
            final[("Fetch", APPLICATION_LEVEL)]["sends"],
            final[("Reorder", APPLICATION_LEVEL)]["receives"],
            round(final[("IDCT_1", OS_LEVEL)]["cpu_time_us"] / 1e3, 1),
        ]
    )
    print(table.render())
    expected = 18 * (N_IMAGES - 1)
    assert final[("Fetch", APPLICATION_LEVEL)]["sends"] == expected
    print(f"\nok: counters converged to 18 x (N-1) = {expected}")


if __name__ == "__main__":
    main()
