#!/usr/bin/env python3
"""The paper's MPSoC experiment in miniature (sections 5.3-5.4).

Deploys the merged Fetch-Reorder component on the simulated ST40 and one
IDCT per ST231 accelerator, prints Table-3 style task-time/memory
observations, and sweeps the EMBera send size across the 50 kB
transfer-buffer knee (Figure 8).

Run:  python examples/mjpeg_sti7200.py [n_images]
"""

import sys

from repro.core import Application, CONTROL, MIDDLEWARE_LEVEL, OS_LEVEL
from repro.metrics import Table
from repro.mjpeg import generate_stream
from repro.mjpeg.components import build_sti7200_assembly
from repro.runtime import Sti7200SimRuntime


def run_decoder(n_images: int) -> None:
    print(f"encoding a {n_images}-image synthetic MJPEG stream (96x96)...")
    stream = generate_stream(n_images, 96, 96, quality=75, seed=7)
    app = build_sti7200_assembly(stream)
    runtime = Sti7200SimRuntime()
    print("running Fetch-Reorder (ST40) + 2x IDCT (ST231) under OS21/EMBX...")
    runtime.run(app)
    reports = runtime.collect()
    runtime.stop()

    t3 = Table(["Component", "task_time (s)", "Mem (kB)"],
               title="Task time and memory (cf. paper Table 3)")
    for name in ("Fetch-Reorder", "IDCT_1", "IDCT_2"):
        os_r = reports[(name, OS_LEVEL)]
        t3.add_row([name, round(os_r["exec_time_us"] / 1e6, 2), os_r["memory_kb"]])
    print()
    print(t3.render())
    fr = reports[("Fetch-Reorder", OS_LEVEL)]["exec_time_us"]
    idct = reports[("IDCT_1", OS_LEVEL)]["exec_time_us"]
    print(f"\nFetch-Reorder / IDCT task-time ratio: {fr / idct:.1f}x "
          "(the paper observes ~10x: the general-purpose ST40 computes the "
          "Reorder algorithm slowly)")


def send_size_sweep() -> None:
    sizes_kb = (10, 25, 50, 100, 200)
    table = Table(["size (kB)", "ST40 send (ms)", "ST231 send (ms)"],
                  title="EMBera send time vs message size (cf. paper Figure 8)")
    for kb in sizes_kb:
        row = [kb]
        for cpu in (0, 1):
            app = Application(f"sweep{kb}-{cpu}")

            def sender(ctx, nbytes=kb * 1024):
                for _ in range(10):
                    yield from ctx.send("out", bytes(nbytes))
                yield from ctx.send("out", None, kind=CONTROL, tag="eos")

            def receiver(ctx):
                while True:
                    msg = yield from ctx.receive("in")
                    if msg.kind == CONTROL:
                        return

            app.create("tx", behavior=sender, requires=["out"], cpu=cpu)
            app.create("rx", behavior=receiver, provides=["in"], cpu=3,
                       object_bytes=512 * 1024)
            app.connect("tx", "out", "rx", "in")
            app.attach_observer(targets=["tx"])
            rt = Sti7200SimRuntime()
            rt.run(app)
            reports = rt.collect(plan=[("tx", MIDDLEWARE_LEVEL)])
            rt.stop()
            row.append(round(reports[("tx", MIDDLEWARE_LEVEL)]["send"]["mean_ns"] / 1e6, 2))
        table.add_row(row)
    print()
    print(table.render())
    print("\nnote the slope change above 50 kB (the transfer-buffer knee) and "
          "the ST40 consistently above the ST231.")


if __name__ == "__main__":
    run_decoder(int(sys.argv[1]) if len(sys.argv) > 1 else 20)
    send_size_sweep()
